//! Greedy scenario shrinking: turn a failing world into the smallest
//! world that still fails the *same* oracles.
//!
//! Classic property-testing shrinking, specialised to [`Scenario`]:
//! candidates are ordered most-aggressive-first (halve the dataset,
//! halve the cluster) down to single-event removals, and a candidate is
//! accepted only if it still violates at least one of the oracle names
//! the original failure violated — shrinking must never wander onto a
//! *different* bug. The loop re-runs until no candidate is accepted, so
//! the result is a local minimum under all the moves below.

use crate::harness::{check_scenario_with, CheckOptions, CheckOutcome};
use crate::scenario::{Corruption, Scenario};
use std::collections::HashSet;

/// A minimised failing scenario and its (still-failing) verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Shrunk {
    pub scenario: Scenario,
    pub outcome: CheckOutcome,
}

/// Shrink a failing scenario to a local minimum that trips the same
/// oracle(s). Returns `None` when `sc` does not fail at all.
pub fn shrink(sc: &Scenario, opts: &CheckOptions) -> Option<Shrunk> {
    let first = check_scenario_with(sc, opts);
    if first.passed() {
        return None;
    }
    let oracles = first.oracle_names();
    let mut cur = sc.clone();
    let mut cur_out = first;
    loop {
        let mut improved = false;
        for cand in candidates(&cur) {
            let out = check_scenario_with(&cand, opts);
            if out.oracle_names().intersection(&oracles).next().is_some() {
                cur = cand;
                cur_out = out;
                improved = true;
                break;
            }
        }
        if !improved {
            return Some(Shrunk {
                scenario: cur,
                outcome: cur_out,
            });
        }
    }
}

/// Every one-step reduction of `sc`, most aggressive first. All
/// candidates keep the scenario well-formed (events on live nodes,
/// replication ≤ nodes, target < subdatasets).
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |c: Scenario| {
        if c != *sc {
            out.push(c);
        }
    };

    // Halve, then decrement, the dataset.
    if sc.records > 16 {
        let mut c = sc.clone();
        c.records = (sc.records / 2).max(16);
        push(c);
    }
    if sc.records > 8 {
        let mut c = sc.clone();
        c.records = sc.records - 1;
        push(c);
    }

    // Halve, then decrement, the cluster.
    if sc.nodes > 2 {
        push(with_nodes(sc, (sc.nodes / 2).max(2)));
        push(with_nodes(sc, sc.nodes - 1));
    }

    // Fewer sub-datasets (keep the target in range).
    if sc.subdatasets > 2 {
        let mut c = sc.clone();
        c.subdatasets = (sc.subdatasets / 2).max(2);
        c.target = c.target.min(c.subdatasets - 1);
        push(c);
    }

    // Less replication.
    if sc.replication > 1 {
        let mut c = sc.clone();
        c.replication -= 1;
        push(c);
    }

    // Drop fault events, one list at a time.
    if !sc.crashes.is_empty() {
        let mut c = sc.clone();
        c.crashes.pop();
        push(c);
    }
    if !sc.slow.is_empty() {
        let mut c = sc.clone();
        c.slow.pop();
        push(c);
    }
    if !sc.nic.is_empty() {
        let mut c = sc.clone();
        c.nic.pop();
        push(c);
    }

    // Step down the corruption ladder.
    match sc.corruption {
        Corruption::Total { stride } => {
            let mut c = sc.clone();
            c.corruption = Corruption::Shards { stride };
            push(c);
        }
        Corruption::Shards { .. } => {
            let mut c = sc.clone();
            c.corruption = Corruption::None;
            push(c);
        }
        Corruption::None => {}
    }

    // Simpler failure semantics: the oracle notifier instead of the
    // heartbeat detector.
    if sc.detection {
        let mut c = sc.clone();
        c.detection = false;
        push(c);
    }

    // Coarser metadata sharding (fewer files in the repro).
    if sc.shard_blocks < 64 {
        let mut c = sc.clone();
        c.shard_blocks = sc.shard_blocks * 2;
        push(c);
    }

    // Simpler ingest: drop the mid-commit crash, then compact per arrival
    // (the smallest commit plans, so the crash point is easiest to read).
    if sc.ingest.crash_commit.is_some() {
        let mut c = sc.clone();
        c.ingest.crash_commit = None;
        push(c);
    }
    if sc.ingest.compact_every > 1 {
        let mut c = sc.clone();
        c.ingest.compact_every = 1;
        push(c);
    }

    // Simpler pipeline: drop the mid-checkpoint crash, then shed stages
    // from the back (the spec always keeps its leading filter and
    // trailing output, so any prefix of the drawn ops is well-formed).
    if sc.pipeline.crash_stage.is_some() {
        let mut c = sc.clone();
        c.pipeline.crash_stage = None;
        push(c);
    }
    if !sc.pipeline.ops.is_empty() {
        let mut c = sc.clone();
        c.pipeline.ops.pop();
        push(c);
    }

    // Simpler shuffle: coarser key space first, then the eagerest split
    // threshold (factor 1.0 splits at exactly the fair share, the
    // easiest plan to read in a repro).
    if sc.shuffle.key_ranges > 2 {
        let mut c = sc.clone();
        c.shuffle.key_ranges = (sc.shuffle.key_ranges / 2).max(2);
        push(c);
    }
    if sc.shuffle.split_factor != 1.0 {
        let mut c = sc.clone();
        c.shuffle.split_factor = 1.0;
        push(c);
    }

    // Simpler serving axis: shorter stream first (the biggest win for a
    // repro), then fewer tenants, then drop scripted events from the
    // back, then collapse the worker pool (a one-worker repro reads as a
    // sequential trace).
    if sc.serve.queries > 4 {
        let mut c = sc.clone();
        c.serve.queries = (sc.serve.queries / 2).max(4);
        for e in &mut c.serve.events {
            match e {
                crate::scenario::ServeEventPlan::Ingest { at_query, .. }
                | crate::scenario::ServeEventPlan::NodeLoss { at_query, .. } => {
                    *at_query = (*at_query).min(c.serve.queries);
                }
            }
        }
        push(c);
    }
    if sc.serve.tenants > 1 {
        let mut c = sc.clone();
        c.serve.tenants -= 1;
        push(c);
    }
    if !sc.serve.events.is_empty() {
        let mut c = sc.clone();
        c.serve.events.pop();
        push(c);
    }
    if sc.serve.workers > 1 {
        let mut c = sc.clone();
        c.serve.workers = 1;
        push(c);
    }

    out
}

/// Shrink the cluster to `nodes`, dropping fault events that referenced
/// removed nodes and clamping replication.
fn with_nodes(sc: &Scenario, nodes: u32) -> Scenario {
    let mut c = sc.clone();
    c.nodes = nodes;
    c.replication = c.replication.min(nodes as usize);
    c.crashes.retain(|e| e.node < nodes as usize);
    c.slow.retain(|e| e.node < nodes as usize);
    c.nic.retain(|e| e.node < nodes as usize);
    // Crash nodes must stay distinct and non-zero — retain preserves both.
    let distinct: HashSet<usize> = c.crashes.iter().map(|e| e.node).collect();
    debug_assert_eq!(distinct.len(), c.crashes.len());
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_stay_well_formed() {
        for seed in 0..60 {
            let sc = Scenario::from_seed(seed);
            for c in candidates(&sc) {
                assert!(c.nodes >= 2);
                assert!(c.replication >= 1 && c.replication <= c.nodes as usize);
                assert!(c.target < c.subdatasets);
                assert!(c.records >= 8);
                for e in &c.crashes {
                    assert!(e.node != 0 && e.node < c.nodes as usize);
                }
                for e in &c.slow {
                    assert!(e.node < c.nodes as usize);
                }
                for e in &c.nic {
                    assert!(e.node < c.nodes as usize);
                }
                assert!(c.shuffle.key_ranges >= 2);
                assert!(c.shuffle.split_factor >= 1.0);
                assert!(c.serve.tenants >= 1);
                assert!(c.serve.queries >= 4);
                assert!(c.serve.workers >= 1);
            }
        }
    }

    #[test]
    fn passing_scenario_does_not_shrink() {
        let sc = Scenario::from_seed(0);
        assert!(shrink(&sc, &CheckOptions::default()).is_none());
    }
}
