//! The invariant oracles, and the driver that runs one scenario through
//! the whole stack and checks all of them.
//!
//! Every oracle is a property that must hold for *any* scenario —
//! healthy, slow, crashing or metadata-corrupted. The catalog is
//! documented oracle-by-oracle in DESIGN.md §11 with the paper equation
//! or section each one enforces.

use crate::scenario::{Corruption, Scenario, ServeEventPlan};
use datanet::planner::{Algorithm1, Assignment, FordFulkersonPlanner};
use datanet::{
    checkpoint, ElasticMapArray, IngestConfig, Ingestor, MetaStore, RetryPolicy, Separation,
    SizeInfo, SubDatasetView,
};
use datanet_analytics::{
    word_count_profile, AggJob, CrashPoint, MetaPlane, Pipeline, PipelineEnv, ShuffleParams,
    StageOp,
};
use datanet_cluster::SimTime;
use datanet_dfs::{BlockId, Dfs, NodeId, Record, SubDatasetId};
use datanet_mapreduce::{
    apportion, planned_load_bound, range_matrix_estimate, range_matrix_truth,
    run_analysis_shuffled, run_analysis_shuffled_traced, run_pipeline_faulty_traced,
    run_pipeline_traced, run_selection_resilient_traced, run_selection_traced, AnalysisConfig,
    DataNetScheduler, DelayScheduler, ExecutionReport, FaultConfig, LocalityScheduler,
    PlannedScheduler, SelectionConfig, SelectionOutcome, ShufflePlan, ShufflePlanner,
};
use datanet_obs::Recorder;
use datanet_serve::{
    generate_stream, plan_digest, serve, serve_with_planted_staleness, Disposition, ScriptedEvent,
    ServeConfig, ServeEvent, StreamConfig, TenantMix, World,
};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Makespan-order tolerance: the max-flow plan may exceed the greedy
/// makespan by this factor (plus [`MAKESPAN_SLACK_TASKS`] task overheads
/// and the task-count slack below). The plan minimises the *byte*
/// bottleneck but is blind to per-task overhead, so on worlds of many
/// light blocks a byte-optimal assignment piles tasks onto one node and
/// loses wall-clock time to overhead the oracle prices separately: the
/// plan's excess max-tasks-per-node over greedy's, charged at one
/// `task_overhead` each (seed 2017 — 97 light blocks on 4 nodes, a 2×
/// makespan from pure task-count imbalance — is exactly this shape).
/// With that overhead cost accounted, the residual ratio measures byte
/// scheduling quality alone. Calibrated: worst observed residual over
/// seeds 0..600 and 1900..2100 is 0.8630 (seed 418; see
/// `calibrate_makespan_tolerances`).
pub const MAKESPAN_TOL_FF_VS_GREEDY: f64 = 1.05;

/// Makespan-order tolerance: greedy may exceed the locality baseline by
/// this factor. The baseline scans *every* block, so it almost always
/// loses big; the slack only matters on worlds where the target
/// sub-dataset covers nearly all blocks and remote balancing reads cost
/// greedy more than the baseline's extra scans. Calibrated: worst
/// observed ratio over seeds 0..600 and 1900..2100 is 0.8554.
pub const MAKESPAN_TOL_GREEDY_VS_LOCALITY: f64 = 1.05;

/// Additive slack for the makespan-order oracles, in units of
/// `SelectionConfig::task_overhead` (absorbs ±1-task granularity on
/// tiny worlds where a single 6 ms overhead dominates the makespan).
pub const MAKESPAN_SLACK_TASKS: f64 = 8.0;

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Stable oracle name (the shrinker matches failures by this).
    pub oracle: String,
    /// Human-readable specifics: expected vs actual.
    pub detail: String,
}

impl Violation {
    fn new(oracle: &str, detail: String) -> Self {
        Self {
            oracle: oracle.to_string(),
            detail,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Knobs that change the *system under test*, not the scenario. Used by
/// the harness's self-test to plant bugs and prove the oracles catch
/// them; always default in production checking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckOptions {
    /// Extra bytes credited per greedy assignment (see
    /// `Algorithm1::plant_credit_skew`). Non-zero must trip the
    /// `greedy-conservation` oracle.
    pub credit_skew: u64,
    /// Collapse the shuffle planner onto one reducer (see
    /// `ShufflePlanner::plant_reducer_overload`). `true` must trip the
    /// `reduce-skew` oracle.
    pub overload_reducer: bool,
    /// Make the serving plane's plan cache ignore epoch keys (see
    /// `PlanCache::plant_staleness`). `true` must trip the
    /// `serve-cache-coherence` oracle on any scenario whose serve axis
    /// crosses a world mutation.
    pub stale_serve_cache: bool,
}

/// Verdict for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// Every violated oracle (empty = scenario passed).
    pub violations: Vec<Violation>,
    /// World size, for shrink reporting.
    pub blocks: usize,
    /// Cluster size, for shrink reporting.
    pub nodes: u32,
}

impl CheckOutcome {
    /// Whether every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The set of violated oracle names.
    pub fn oracle_names(&self) -> HashSet<String> {
        self.violations.iter().map(|v| v.oracle.clone()).collect()
    }
}

/// Check one scenario against the full oracle catalog.
pub fn check_scenario(sc: &Scenario) -> CheckOutcome {
    check_scenario_with(sc, &CheckOptions::default())
}

/// Unique on-disk scratch space per store instantiation — the harness may
/// run from many test threads at once, and shrinking re-checks mutated
/// copies of the same scenario, so directory names must never collide.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Replica directories for one simulated metadata plane; removed on drop
/// (including the unwinding path, so a panicking oracle leaks nothing).
struct ReplicaDirs {
    base: PathBuf,
    dirs: Vec<PathBuf>,
}

impl ReplicaDirs {
    fn new(replicas: usize) -> Self {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let base =
            std::env::temp_dir().join(format!("datanet-check-{}-{}", std::process::id(), seq));
        let dirs = (0..replicas)
            .map(|i| base.join(format!("replica-{i}")))
            .collect();
        Self { base, dirs }
    }

    fn paths(&self) -> Vec<&Path> {
        self.dirs.iter().map(PathBuf::as_path).collect()
    }
}

impl Drop for ReplicaDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.base);
    }
}

/// Check one scenario with planted-bug options (self-test entry point).
pub fn check_scenario_with(sc: &Scenario, opts: &CheckOptions) -> CheckOutcome {
    check_scenario_instrumented(sc, opts, &Recorder::off())
}

/// [`check_scenario_with`] with an observability [`Recorder`] attached:
/// the healthy engine runs record through it (metrics flow into any
/// attached registry), and every oracle violation is appended to any
/// attached flight ring — so a dump taken right after a failing check
/// ends with the violations, preceded by the last significant events of
/// the run that produced them.
pub fn check_scenario_instrumented(
    sc: &Scenario,
    opts: &CheckOptions,
    rec: &Recorder,
) -> CheckOutcome {
    let mut v = Vec::new();
    let dfs = sc.build_dfs();
    let target = sc.target_id();
    let truth = dfs.subdataset_distribution(target);
    let total = dfs.subdataset_total(target);
    let sep = Separation::Alpha(sc.alpha);

    // ---- scan: parallel and sequential builds agree ------------------
    let arr = ElasticMapArray::build(&dfs, &sep);
    let seq = ElasticMapArray::build_sequential(&dfs, &sep);
    for s in 0..sc.subdatasets {
        let s = SubDatasetId(s);
        if arr.view(s) != seq.view(s) {
            v.push(Violation::new(
                "scan-determinism",
                format!(
                    "parallel and sequential scans disagree on sub-dataset {}",
                    s.0
                ),
            ));
            break;
        }
    }

    // ---- Equation 6 on the healthy view ------------------------------
    let view = arr.view(target);
    eq6_oracles(&mut v, "healthy", &view, &truth, &HashSet::new());

    // ---- MetaStore round-trip ----------------------------------------
    let dirs = ReplicaDirs::new(2);
    if let Err(e) = MetaStore::save_replicated(&arr, &dirs.paths(), sc.shard_blocks) {
        v.push(Violation::new("store-save", format!("{e}")));
        return CheckOutcome {
            violations: v,
            blocks: dfs.block_count(),
            nodes: sc.nodes,
        };
    }
    let shard_count = match MetaStore::open_replicated(&dirs.paths(), 4) {
        Ok(mut store) => {
            store_roundtrip_oracles(&mut v, &arr, &mut store, sc);
            store.manifest().shard_count()
        }
        Err(e) => {
            v.push(Violation::new("store-open", format!("{e}")));
            0
        }
    };

    // ---- corruption, degraded view, Equation 6 per rung --------------
    apply_corruption(sc, &dirs, shard_count);
    let degraded_unknown: HashSet<BlockId> = match MetaStore::open_replicated(&dirs.paths(), 4) {
        Ok(mut store) => {
            store.set_recorder(rec.clone());
            let deg = store.view_degraded(target);
            let unknown: HashSet<BlockId> = deg.unknown_blocks().iter().copied().collect();
            eq6_oracles(&mut v, "degraded", deg.view(), &truth, &unknown);
            match sc.corruption {
                Corruption::None => {
                    if !deg.is_healthy() || !unknown.is_empty() {
                        v.push(Violation::new(
                            "rung-classification",
                            format!(
                                "uncorrupted store produced a degraded view \
                                 ({} unknown blocks)",
                                unknown.len()
                            ),
                        ));
                    }
                    if deg.view() != &view {
                        v.push(Violation::new(
                            "rung-classification",
                            "uncorrupted degraded view differs from the in-memory view".to_string(),
                        ));
                    }
                }
                Corruption::Shards { .. } | Corruption::Total { .. } => {
                    if shard_count > 0 && deg.is_healthy() {
                        v.push(Violation::new(
                            "rung-classification",
                            "store reported a fully-healthy view off corrupted replicas"
                                .to_string(),
                        ));
                    }
                }
            }
            unknown
        }
        Err(e) => {
            v.push(Violation::new("store-open", format!("degraded open: {e}")));
            HashSet::new()
        }
    };

    // ---- planners -----------------------------------------------------
    greedy_oracles(&mut v, &dfs, &view, opts.credit_skew);
    let plan = ff_oracles(&mut v, &dfs, &view);

    // ---- healthy engine: all four schedulers -------------------------
    let cfg = SelectionConfig::default();
    let loc = run_selection_traced(&dfs, &truth, &mut LocalityScheduler::new(&dfs), &cfg, rec);
    let del = run_selection_traced(&dfs, &truth, &mut DelayScheduler::new(&dfs, 2), &cfg, rec);
    let dn = run_selection_traced(
        &dfs,
        &truth,
        &mut DataNetScheduler::new(&dfs, &view),
        &cfg,
        rec,
    );
    let ff = run_selection_traced(
        &dfs,
        &truth,
        &mut PlannedScheduler::new(&plan, dfs.namenode()),
        &cfg,
        rec,
    );
    for out in [&loc, &del, &dn, &ff] {
        conservation_oracle(&mut v, "healthy-conservation", out, &truth, total);
    }
    if dn.bytes_read > loc.bytes_read || ff.bytes_read > loc.bytes_read {
        v.push(Violation::new(
            "bytes-read-order",
            format!(
                "metadata-aware runs read more than the scan-everything baseline: \
                 datanet={} maxflow={} locality={}",
                dn.bytes_read, ff.bytes_read, loc.bytes_read
            ),
        ));
    }
    makespan_oracle(&mut v, &cfg, &loc, &dn, &ff);

    // ---- faulty engine + traced twins --------------------------------
    if sc.has_faults() {
        let fc = sc.fault_config();
        type FaultyRun<'a> = Box<dyn Fn(&Recorder) -> SelectionOutcome + 'a>;
        let runs: [(&str, FaultyRun); 3] = [
            (
                "locality",
                Box::new(|rec| {
                    faulty_run(
                        &dfs,
                        &truth,
                        &mut LocalityScheduler::new(&dfs),
                        &cfg,
                        &fc,
                        rec,
                    )
                }),
            ),
            (
                "datanet",
                Box::new(|rec| {
                    faulty_run(
                        &dfs,
                        &truth,
                        &mut DataNetScheduler::new(&dfs, &view),
                        &cfg,
                        &fc,
                        rec,
                    )
                }),
            ),
            (
                "planned",
                Box::new(|rec| {
                    faulty_run(
                        &dfs,
                        &truth,
                        &mut PlannedScheduler::new(&plan, dfs.namenode()),
                        &cfg,
                        &fc,
                        rec,
                    )
                }),
            ),
        ];
        for (name, run) in &runs {
            let out = traced_twin(&mut v, name, run);
            conservation_oracle(&mut v, "fault-conservation", &out, &truth, total);
            dead_zero_credit_oracle(&mut v, &out);
        }
    }

    // ---- resilient engine off the (possibly corrupted) store ---------
    resilient_oracles(&mut v, sc, &dfs, &dirs, &truth, total, &degraded_unknown);

    // ---- full pipeline twins + obs closure ---------------------------
    pipeline_oracles(&mut v, sc, &dfs, &view);

    // ---- checkpointed pipeline executor: crash + resume ≡ run --------
    pipeline_exec_oracles(&mut v, sc, &dfs, &arr);

    // ---- distribution-aware shuffle: skew, conservation, merge -------
    shuffle_oracles(&mut v, sc, &dfs, &view, &arr, opts);

    // ---- streaming ingest: incremental ≡ rebuild at every prefix -----
    ingest_oracles(&mut v, sc, &dfs, &sep);

    // ---- multi-tenant serving plane: conservation, fairness, cache ----
    serve_oracles(&mut v, sc, &sep, opts);

    // Violations close out the flight ring: a dump taken now reads as
    // "…recent events, then what the oracles concluded about them".
    for violation in &v {
        rec.flight(
            datanet_obs::FlightKind::OracleViolation,
            datanet_obs::Domain::Wall,
            rec.wall_us(),
            None,
            format!("{}: {}", violation.oracle, violation.detail),
        );
    }

    CheckOutcome {
        violations: v,
        blocks: dfs.block_count(),
        nodes: sc.nodes,
    }
}

/// Equation 6 (Section III-C) on one view: τ₁ entries are ground truth,
/// no in-scope block is missed, and the estimate sits inside the analytic
/// envelope `|Z − T| ≤ Σ_{b∈τ₂} |truth_b − δ|` over the known blocks.
fn eq6_oracles(
    v: &mut Vec<Violation>,
    label: &str,
    view: &SubDatasetView,
    truth: &[u64],
    unknown: &HashSet<BlockId>,
) {
    for &(b, size) in view.exact() {
        if size != truth[b.index()] {
            v.push(Violation::new(
                "tau1-ground-truth",
                format!(
                    "{label}: τ₁ says block {} holds {} bytes, truth is {}",
                    b.0,
                    size,
                    truth[b.index()]
                ),
            ));
        }
    }
    let known: HashSet<BlockId> = view.blocks().collect();
    for (i, &t) in truth.iter().enumerate() {
        let b = BlockId(i as u32);
        if t > 0 && !known.contains(&b) && !unknown.contains(&b) {
            v.push(Violation::new(
                "no-false-negative",
                format!("{label}: block {i} holds {t} bytes but the view skips it"),
            ));
        }
    }
    let delta = view.delta() as i128;
    let z = view.estimated_total() as i128;
    let t_known: i128 = truth
        .iter()
        .enumerate()
        .filter(|(i, _)| !unknown.contains(&BlockId(*i as u32)))
        .map(|(_, &t)| t as i128)
        .sum();
    let envelope: i128 = view
        .bloom()
        .iter()
        .map(|b| (truth[b.index()] as i128 - delta).abs())
        .sum();
    if (z - t_known).abs() > envelope {
        v.push(Violation::new(
            "eq6-envelope",
            format!(
                "{label}: |Z − T| = |{z} − {t_known}| exceeds the Equation 6 \
                 envelope {envelope}"
            ),
        ));
    }
}

/// Persisted metadata answers every query the in-memory array answers.
fn store_roundtrip_oracles(
    v: &mut Vec<Violation>,
    arr: &ElasticMapArray,
    store: &mut MetaStore,
    sc: &Scenario,
) {
    for s in 0..sc.subdatasets {
        let s = SubDatasetId(s);
        match store.view(s) {
            Ok(view) if view == arr.view(s) => {}
            Ok(_) => v.push(Violation::new(
                "store-roundtrip",
                format!(
                    "persisted view of sub-dataset {} differs from in-memory",
                    s.0
                ),
            )),
            Err(e) => v.push(Violation::new(
                "store-roundtrip",
                format!("view({}) failed on a healthy store: {e}", s.0),
            )),
        }
    }
    let target = sc.target_id();
    for i in 0..arr.len() {
        let b = BlockId(i as u32);
        match store.query(b, target) {
            Ok(info) if info == arr.query(b, target) => {}
            Ok(_) => v.push(Violation::new(
                "store-roundtrip",
                format!("persisted query({i}) differs from in-memory"),
            )),
            Err(e) => v.push(Violation::new(
                "store-roundtrip",
                format!("query({i}) failed on a healthy store: {e}"),
            )),
        }
    }
}

/// Overwrite metadata files per the scenario's corruption pattern — in
/// *every* replica directory, so failover cannot mask it.
fn apply_corruption(sc: &Scenario, dirs: &ReplicaDirs, shard_count: usize) {
    let (stride, summaries_too) = match sc.corruption {
        Corruption::None => return,
        Corruption::Shards { stride } => (stride.max(1), false),
        Corruption::Total { stride } => (stride.max(1), true),
    };
    for i in (0..shard_count).step_by(stride) {
        for dir in &dirs.dirs {
            let _ = std::fs::write(dir.join(format!("shard-{i:04}.json")), b"simcheck-garbage");
            if summaries_too {
                let _ = std::fs::write(
                    dir.join(format!("summary-{i:04}.json")),
                    b"simcheck-garbage",
                );
            }
        }
    }
}

/// Algorithm 1 credit conservation: drain the greedy balancer with
/// round-robin pull requests; every in-scope block must be handed out
/// exactly once and the credited workloads must sum to the Equation 6
/// estimate it balanced against. This is the oracle the planted
/// `credit_skew` bug must trip.
fn greedy_oracles(v: &mut Vec<Violation>, dfs: &Dfs, view: &SubDatasetView, skew: u64) {
    let mut alg = Algorithm1::new(dfs, view);
    if skew > 0 {
        alg.plant_credit_skew(skew);
    }
    let m = dfs.config().topology.len();
    let mut seen = HashSet::new();
    let mut served = 0usize;
    let mut i = 0usize;
    while let Some((block, _local)) = alg.next_task_for(NodeId((i % m) as u32)) {
        if !seen.insert(block) {
            v.push(Violation::new(
                "greedy-unique",
                format!("block {} handed out twice", block.0),
            ));
            break;
        }
        served += 1;
        i += 1;
        if served > view.block_count() {
            break;
        }
    }
    if served != view.block_count() {
        v.push(Violation::new(
            "greedy-coverage",
            format!(
                "greedy served {served} tasks for a {}-block view",
                view.block_count()
            ),
        ));
    }
    let credited: u64 = alg.workloads().iter().sum();
    if credited != view.estimated_total() {
        v.push(Violation::new(
            "greedy-conservation",
            format!(
                "credited workloads sum to {credited}, Equation 6 total is {}",
                view.estimated_total()
            ),
        ));
    }
}

/// Ford–Fulkerson plan oracles: full coverage, every assignment data-local
/// (the max-flow network has no remote edges), and the makespan witness
/// `max_workload ≥ fractional_optimum` (nothing beats the fluid bound).
fn ff_oracles(v: &mut Vec<Violation>, dfs: &Dfs, view: &SubDatasetView) -> Assignment {
    let planner = FordFulkersonPlanner::new(dfs, view);
    let plan = planner.plan();
    if plan.assigned_blocks() != view.block_count() {
        v.push(Violation::new(
            "maxflow-coverage",
            format!(
                "plan covers {} of {} in-scope blocks",
                plan.assigned_blocks(),
                view.block_count()
            ),
        ));
    }
    for n in 0..plan.node_count() {
        let node = NodeId(n as u32);
        for &b in plan.tasks_of(node) {
            if !dfs.replicas(b).contains(&node) {
                v.push(Violation::new(
                    "maxflow-locality",
                    format!("block {} planned onto non-replica node {n}", b.0),
                ));
            }
        }
    }
    if view.block_count() > 0 && plan.max_workload() < planner.fractional_optimum() {
        v.push(Violation::new(
            "maxflow-lower-bound",
            format!(
                "max workload {} beats the fractional optimum {}",
                plan.max_workload(),
                planner.fractional_optimum()
            ),
        ));
    }
    plan
}

/// Byte conservation: every target byte is either credited to a live node
/// or accounted as lost with the blocks that carried it.
fn conservation_oracle(
    v: &mut Vec<Violation>,
    oracle: &str,
    out: &SelectionOutcome,
    truth: &[u64],
    total: u64,
) {
    let lost: HashSet<BlockId> = out
        .faults
        .unrecoverable_blocks
        .iter()
        .chain(out.faults.abandoned_blocks.iter())
        .copied()
        .collect();
    let lost_bytes: u64 = lost.iter().map(|b| truth[b.index()]).sum();
    let processed: u64 = out.per_node_bytes.iter().sum();
    if processed + lost_bytes != total {
        v.push(Violation::new(
            oracle,
            format!(
                "{}: processed {} + lost {} ≠ input {}",
                out.scheduler, processed, lost_bytes, total
            ),
        ));
    }
}

/// A crashed node keeps no credit: its partitions died with it.
fn dead_zero_credit_oracle(v: &mut Vec<Violation>, out: &SelectionOutcome) {
    for &n in &out.faults.crashed_nodes {
        if out.per_node_bytes[n] != 0 {
            v.push(Violation::new(
                "dead-zero-credit",
                format!(
                    "{}: crashed node {n} still credited {} bytes",
                    out.scheduler, out.per_node_bytes[n]
                ),
            ));
        }
    }
}

/// One faulty selection run with a fresh scheduler (twin runs must not
/// share scheduler state).
fn faulty_run(
    dfs: &Dfs,
    truth: &[u64],
    scheduler: &mut dyn datanet_mapreduce::MapScheduler,
    cfg: &SelectionConfig,
    fc: &FaultConfig,
    rec: &Recorder,
) -> SelectionOutcome {
    datanet_mapreduce::run_selection_faulty_traced(dfs, truth, scheduler, cfg, fc, rec)
}

/// Tracing must be a pure observer: the outcome with a live recorder is
/// bit-identical to the outcome with `Recorder::off()`, and every span the
/// live run opened is closed.
fn traced_twin(
    v: &mut Vec<Violation>,
    name: &str,
    run: &dyn Fn(&Recorder) -> SelectionOutcome,
) -> SelectionOutcome {
    let off = run(&Recorder::off());
    let rec = Recorder::new();
    let on = run(&rec);
    if off != on {
        v.push(Violation::new(
            "traced-twin",
            format!("{name}: traced run diverged from untraced twin"),
        ));
    }
    let data = rec.take();
    if data.unclosed_spans() != 0 {
        v.push(Violation::new(
            "unclosed-spans",
            format!("{name}: {} spans never closed", data.unclosed_spans()),
        ));
    }
    off
}

/// How many more tasks `a`'s busiest node runs than `b`'s busiest node
/// (0 when `a` is no more concentrated).
fn excess_peak_tasks(a: &SelectionOutcome, b: &SelectionOutcome) -> usize {
    let peak = |o: &SelectionOutcome| o.tasks_per_node.iter().copied().max().unwrap_or(0);
    peak(a).saturating_sub(peak(b))
}

/// Makespan ordering (Section IV-B, Figures 5/10): max-flow ≲ greedy ≲
/// locality baseline, with documented tolerances for per-task overhead.
fn makespan_oracle(
    v: &mut Vec<Violation>,
    cfg: &SelectionConfig,
    loc: &SelectionOutcome,
    dn: &SelectionOutcome,
    ff: &SelectionOutcome,
) {
    let slack = cfg.task_overhead.as_secs_f64() * MAKESPAN_SLACK_TASKS;
    let (loc_end, dn_end, ff_end) = (
        loc.end.as_secs_f64(),
        dn.end.as_secs_f64(),
        ff.end.as_secs_f64(),
    );
    // The plan optimises the byte bottleneck and is blind to per-task
    // overhead; charge its excess task concentration (vs greedy's) at
    // one `task_overhead` per extra task on the busiest node, so the
    // tolerance below measures byte scheduling quality alone.
    let count_slack = cfg.task_overhead.as_secs_f64() * excess_peak_tasks(ff, dn) as f64;
    if ff_end > dn_end * MAKESPAN_TOL_FF_VS_GREEDY + slack + count_slack {
        v.push(Violation::new(
            "makespan-order",
            format!("max-flow makespan {ff_end:.4}s ≫ greedy {dn_end:.4}s"),
        ));
    }
    if dn_end > loc_end * MAKESPAN_TOL_GREEDY_VS_LOCALITY + slack {
        v.push(Violation::new(
            "makespan-order",
            format!("greedy makespan {dn_end:.4}s ≫ locality baseline {loc_end:.4}s"),
        ));
    }
}

/// The degradation ladder end-to-end: resilient selection off the
/// corrupted store conserves bytes, reports a finite estimator error, and
/// its traced twin (a fresh store handle, same files) is bit-identical.
fn resilient_oracles(
    v: &mut Vec<Violation>,
    sc: &Scenario,
    dfs: &Dfs,
    dirs: &ReplicaDirs,
    truth: &[u64],
    total: u64,
    unknown: &HashSet<BlockId>,
) {
    let fc = sc.has_faults().then(|| sc.fault_config());
    let open = |v: &mut Vec<Violation>| match MetaStore::open_replicated(&dirs.paths(), 4) {
        Ok(store) => Some(store),
        Err(e) => {
            v.push(Violation::new("store-open", format!("resilient open: {e}")));
            None
        }
    };
    let (Some(mut store_a), Some(mut store_b)) = (open(v), open(v)) else {
        return;
    };
    let cfg = SelectionConfig::default();
    let off = run_selection_resilient_traced(
        dfs,
        sc.target_id(),
        &mut store_a,
        &cfg,
        fc.as_ref(),
        &Recorder::off(),
    );
    let rec = Recorder::new();
    let on =
        run_selection_resilient_traced(dfs, sc.target_id(), &mut store_b, &cfg, fc.as_ref(), &rec);
    if off != on {
        v.push(Violation::new(
            "traced-twin",
            "resilient: traced run diverged from untraced twin".to_string(),
        ));
    }
    let data = rec.take();
    if data.unclosed_spans() != 0 {
        v.push(Violation::new(
            "unclosed-spans",
            format!("resilient: {} spans never closed", data.unclosed_spans()),
        ));
    }
    conservation_oracle(v, "resilient-conservation", &off, truth, total);
    dead_zero_credit_oracle(v, &off);
    if !off.meta.est_error.is_finite() || off.meta.est_error < 0.0 {
        v.push(Violation::new(
            "degraded-estimate",
            format!(
                "estimator error {} is not a finite ratio",
                off.meta.est_error
            ),
        ));
    }
    // The ladder never *invents* blocks: rung-3 fallback may add unknown
    // blocks to the schedule, never drop known in-scope ones — so with no
    // unknown blocks the resilient run conserves exactly like a healthy
    // one (checked above) and the rung counts must cover the view.
    if unknown.is_empty() && off.meta.rungs.fallback > 0 {
        v.push(Violation::new(
            "rung-classification",
            format!(
                "no unknown blocks, yet {} blocks scheduled at the fallback rung",
                off.meta.rungs.fallback
            ),
        ));
    }
}

/// Full selection→analysis pipeline: traced twins agree, spans close, and
/// the crash lifecycle is fully chained (crash → suspicion) for every
/// crashed node.
fn pipeline_oracles(v: &mut Vec<Violation>, sc: &Scenario, dfs: &Dfs, view: &SubDatasetView) {
    let job = word_count_profile();
    let sel_cfg = SelectionConfig::default();
    let ana_cfg = AnalysisConfig::default();
    let fc = sc.has_faults().then(|| sc.fault_config());
    let run = |rec: &Recorder| -> ExecutionReport {
        let mut sched = DataNetScheduler::new(dfs, view);
        match &fc {
            Some(fc) => run_pipeline_faulty_traced(
                dfs,
                sc.target_id(),
                &mut sched,
                &job,
                &sel_cfg,
                &ana_cfg,
                fc,
                rec,
            ),
            None => run_pipeline_traced(
                dfs,
                sc.target_id(),
                &mut sched,
                &job,
                &sel_cfg,
                &ana_cfg,
                rec,
            ),
        }
    };
    let off = run(&Recorder::off());
    let rec = Recorder::new();
    let on = run(&rec);
    if off != on {
        v.push(Violation::new(
            "traced-twin",
            "pipeline: traced run diverged from untraced twin".to_string(),
        ));
    }
    let data = rec.take();
    if data.unclosed_spans() != 0 {
        v.push(Violation::new(
            "unclosed-spans",
            format!("pipeline: {} spans never closed", data.unclosed_spans()),
        ));
    }
    let chains = data.crash_chains();
    let crashed = &off.selection.faults.crashed_nodes;
    if chains.len() != crashed.len() {
        v.push(Violation::new(
            "crash-chain",
            format!(
                "{} crash chains in the trace for {} crashed nodes",
                chains.len(),
                crashed.len()
            ),
        ));
    }
    for chain in &chains {
        if chain.suspected_us.is_none() {
            v.push(Violation::new(
                "crash-chain",
                format!("node {} crashed but was never suspected", chain.node),
            ));
        }
    }
}

/// Checkpointed pipeline executor oracles (DESIGN.md §15): the scenario's
/// drawn multi-stage pipeline runs end-to-end with every stage
/// checkpointed; per-stage record accounting matches each op's contract;
/// the durable checkpoint ledger is exactly the stage sequence with the
/// CRCs the run reported; and a scripted mid-checkpoint crash followed by
/// [`Pipeline::resume`] reproduces the uninterrupted run's data product
/// and ledger bit for bit.
fn pipeline_exec_oracles(v: &mut Vec<Violation>, sc: &Scenario, dfs: &Dfs, arr: &ElasticMapArray) {
    let pipe = Pipeline::new(sc.pipeline_spec());
    let mut env = PipelineEnv {
        dfs,
        meta: MetaPlane::Array(arr),
        faults: sc.has_faults().then(|| sc.fault_config()),
        selection: SelectionConfig::default(),
        analysis: AnalysisConfig::default(),
        retry: RetryPolicy::default(),
        retry_seed: sc.seed,
        shuffle: None,
    };
    let dirs_a = ReplicaDirs::new(2);
    let report = match pipe.run(&mut env, &dirs_a.paths(), &Recorder::off()) {
        Ok(r) => r,
        Err(e) => {
            v.push(Violation::new(
                "pipeline-run",
                format!("uninterrupted run failed: {e}"),
            ));
            return;
        }
    };

    // Record accounting per stage: filter replaces, append unions, join
    // only narrows, aggregate/output never touch the record set.
    let count = |s: SubDatasetId| -> u64 {
        dfs.blocks()
            .iter()
            .map(|b| b.filter(s).count() as u64)
            .sum()
    };
    for st in &report.stages {
        let ok = match &pipe.spec().seq[st.index as usize] {
            StageOp::Filter(s) => st.records_out == count(SubDatasetId(*s)),
            StageOp::Append(s) => st.records_out == st.records_in + count(SubDatasetId(*s)),
            StageOp::Join(_) => st.records_out <= st.records_in,
            StageOp::Aggregate(_) | StageOp::Output(_) => st.records_out == st.records_in,
        };
        if !ok {
            v.push(Violation::new(
                "pipeline-stage-conservation",
                format!(
                    "stage {} ({}): {} records in, {} out",
                    st.index, st.label, st.records_in, st.records_out
                ),
            ));
        }
    }

    // Checkpoint monotonicity: the durable ledger is exactly stages
    // 0..n−1, in order, each carrying the payload CRC its stage reported.
    let ledger_a = match checkpoint::ledger(&dirs_a.paths()) {
        Ok(l) => l,
        Err(e) => {
            v.push(Violation::new(
                "pipeline-checkpoint-monotonicity",
                format!("ledger unreadable after a clean run: {e}"),
            ));
            return;
        }
    };
    if ledger_a.len() != pipe.len()
        || ledger_a
            .iter()
            .enumerate()
            .any(|(k, m)| m.last_completed_operation != k as u64)
    {
        v.push(Violation::new(
            "pipeline-checkpoint-monotonicity",
            format!(
                "{}-stage pipeline left ledger epochs [{}]",
                pipe.len(),
                ledger_a
                    .iter()
                    .map(|m| m.last_completed_operation.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ));
    }
    for st in &report.stages {
        match ledger_a.get(st.index as usize) {
            Some(m) if m.payload_crc == st.checkpoint_crc && m.label == st.label => {}
            _ => v.push(Violation::new(
                "pipeline-checkpoint-monotonicity",
                format!(
                    "stage {} ({}) is not in the durable ledger with CRC {:#010x}",
                    st.index, st.label, st.checkpoint_crc
                ),
            )),
        }
    }

    // Scripted mid-checkpoint crash, then resume: the tentpole property.
    let Some(raw) = sc.pipeline.crash_stage else {
        return;
    };
    let crash = CrashPoint {
        stage: (raw % pipe.len() as u64) as usize,
        write_prefix: sc.pipeline.crash_write,
    };
    let dirs_b = ReplicaDirs::new(2);
    let int = match pipe.run_interrupted(&mut env, &dirs_b.paths(), crash, &Recorder::off()) {
        Ok(i) => i,
        Err(e) => {
            v.push(Violation::new(
                "pipeline-run",
                format!("interrupted run failed before its crash point: {e}"),
            ));
            return;
        }
    };
    let rec = Recorder::new();
    let resumed = match pipe.resume(&mut env, &dirs_b.paths(), &rec) {
        Ok(r) => r,
        Err(e) => {
            v.push(Violation::new(
                "pipeline-resume-equivalence",
                format!(
                    "resume failed after a crash {} of {} writes into stage {}: {e}",
                    int.applied_writes, int.plan_writes, int.crash_stage
                ),
            ));
            return;
        }
    };
    let data = rec.take();
    if data.unclosed_spans() != 0 {
        v.push(Violation::new(
            "unclosed-spans",
            format!(
                "pipeline resume: {} spans never closed",
                data.unclosed_spans()
            ),
        ));
    }
    // The resume point is fully determined by how many of the interrupted
    // checkpoint's writes landed: all of them ⇒ the crashed stage is
    // durable; fewer ⇒ the previous stage (or a fresh run at stage 0).
    let expected_from = if int.applied_writes == int.plan_writes {
        Some(int.crash_stage as u64)
    } else {
        (int.crash_stage > 0).then(|| int.crash_stage as u64 - 1)
    };
    if resumed.resumed_from != expected_from {
        v.push(Violation::new(
            "pipeline-resume-equivalence",
            format!(
                "crash {} of {} writes into stage {} should resume from {:?}, resumed from {:?}",
                int.applied_writes,
                int.plan_writes,
                int.crash_stage,
                expected_from,
                resumed.resumed_from
            ),
        ));
    }
    if resumed.data_fingerprint() != report.data_fingerprint() {
        v.push(Violation::new(
            "pipeline-resume-equivalence",
            format!(
                "resumed data product diverged from the uninterrupted run \
                 (crash {} of {} writes into stage {})",
                int.applied_writes, int.plan_writes, int.crash_stage
            ),
        ));
    }
    match checkpoint::ledger(&dirs_b.paths()) {
        Ok(ledger_b) if ledger_b == ledger_a => {}
        Ok(_) => v.push(Violation::new(
            "pipeline-resume-equivalence",
            "resumed checkpoint ledger differs from the uninterrupted run's".to_string(),
        )),
        Err(e) => v.push(Violation::new(
            "pipeline-resume-equivalence",
            format!("resumed ledger unreadable: {e}"),
        )),
    }
}

/// Distribution-aware shuffle oracles (DESIGN.md §17).
///
/// * `reduce-skew` — the planner's promise: no reducer is assigned more
///   estimated bytes than `fair + max(split_threshold, ⌈max_range/m⌉)`
///   (plus per-range rounding), and the bytes each reducer *actually*
///   receives under the truth matrix stay inside the same bound scaled
///   to output units plus the estimate's L1 error — so a planner that
///   funnels load onto one reducer (the planted overload) is caught by
///   arithmetic, not by timing.
/// * `shuffle-byte-conservation` — every mapper output byte arrives at
///   exactly one reducer: Σ received == Σ map_output_bytes(row), and the
///   network/local split partitions it, for the aware and hash plans.
/// * `split-merge-equivalence` — the routed data plane is byte-identical
///   to the unrouted job for any plan and any fragment arrival order:
///   `run_routed` under a seeded permutation of the fragments equals
///   `AggJob::run`, and a full pipeline run with shuffle routing enabled
///   reproduces the unrouted pipeline's `data_fingerprint` bit for bit.
///
/// The traced shuffled run is also twinned against its untraced double
/// under the existing `traced-twin`/`unclosed-spans` names.
fn shuffle_oracles(
    v: &mut Vec<Violation>,
    sc: &Scenario,
    dfs: &Dfs,
    view: &SubDatasetView,
    arr: &ElasticMapArray,
    opts: &CheckOptions,
) {
    let target = sc.target_id();
    let ranges = sc.shuffle.key_ranges;
    let sf = sc.shuffle.split_factor;
    let truth = range_matrix_truth(dfs, target, ranges);
    let est = range_matrix_estimate(dfs, view, ranges);
    let m = truth.len();
    let mut planner = ShufflePlanner::new(sf);
    if opts.overload_reducer {
        planner.plant_reducer_overload();
    }
    let aware = planner.plan(&est);
    let hash = ShufflePlan::hash(ranges, (0..m as u32).map(NodeId).collect());

    // Planner-side skew: the aware plan's estimated per-reducer load
    // respects the analytic bound (± one byte of largest-remainder
    // rounding per range).
    let est_ranges: Vec<u64> = (0..ranges)
        .map(|r| est.iter().map(|row| row[r]).sum())
        .collect();
    let bound = planned_load_bound(&est_ranges, m, sf) + ranges as u64;
    let max_planned = aware.planned_load().into_iter().max().unwrap_or(0);
    if max_planned > bound {
        v.push(Violation::new(
            "reduce-skew",
            format!(
                "planner assigned {max_planned} estimated bytes to one reducer, \
                 bound {bound} (fair share of {} over {m} reducers)",
                est_ranges.iter().sum::<u64>()
            ),
        ));
    }

    // Engine runs: conservation and traced twins, both plans.
    let job = word_count_profile();
    let cfg = AnalysisConfig::default();
    let expected: u64 = truth
        .iter()
        .map(|row| job.map_output_bytes(row.iter().sum()))
        .sum();
    let mut aware_out = None;
    for (name, plan) in [("aware", &aware), ("hash", &hash)] {
        let off = run_analysis_shuffled(&truth, &job, &cfg, plan);
        let rec = Recorder::new();
        let on = run_analysis_shuffled_traced(&truth, &job, &cfg, plan, SimTime::ZERO, &rec);
        if on != off {
            v.push(Violation::new(
                "traced-twin",
                format!("shuffled {name} run diverged from its untraced twin"),
            ));
        }
        let data = rec.take();
        if data.unclosed_spans() != 0 {
            v.push(Violation::new(
                "unclosed-spans",
                format!(
                    "shuffled {name} run: {} spans never closed",
                    data.unclosed_spans()
                ),
            ));
        }
        let received: u64 = off.received.iter().sum();
        if received != expected {
            v.push(Violation::new(
                "shuffle-byte-conservation",
                format!("{name} plan: reducers received {received} bytes of {expected} mapped"),
            ));
        }
        if off.network_bytes + off.local_bytes != expected {
            v.push(Violation::new(
                "shuffle-byte-conservation",
                format!(
                    "{name} plan: network {} + local {} ≠ {expected} mapped",
                    off.network_bytes, off.local_bytes
                ),
            ));
        }
        if name == "aware" {
            aware_out = Some(off);
        }
    }

    // Received-side skew: what the aware plan's reducers actually took
    // in, measured against the planner bound translated to output units.
    // The estimate is allowed to be wrong — the bound absorbs exactly
    // its L1 error against the truth distribution plus the integer
    // apportioning slack — so only genuine routing skew trips this.
    let total_e: u64 = est_ranges.iter().sum();
    if let Some(out) = &aware_out {
        if expected > 0 && total_e > 0 {
            let scale = expected as f64 / total_e as f64;
            let mut truth_ranges = vec![0u64; ranges];
            for row in &truth {
                let cells = apportion(job.map_output_bytes(row.iter().sum()), row);
                for (r, c) in cells.iter().enumerate() {
                    truth_ranges[r] += c;
                }
            }
            let l1: f64 = (0..ranges)
                .map(|r| (scale * est_ranges[r] as f64 - truth_ranges[r] as f64).abs())
                .sum();
            let slack = (ranges * (m + 2)) as f64;
            let bound_r = scale * planned_load_bound(&est_ranges, m, sf) as f64 + l1 + slack;
            let max_recv = out.received.iter().copied().max().unwrap_or(0) as f64;
            if max_recv > bound_r {
                v.push(Violation::new(
                    "reduce-skew",
                    format!(
                        "one reducer received {max_recv} bytes of {expected}; \
                         bound {bound_r:.0} (estimate L1 error {l1:.0})"
                    ),
                ));
            }
        }
    }

    // Data plane: routed ≡ unrouted for every aggregate job the scenario
    // pipeline draws (word count always included), both plans, under the
    // scenario's fragment arrival permutation.
    let records: Vec<Record> = dfs
        .blocks()
        .iter()
        .flat_map(|b| b.filter(target).cloned().collect::<Vec<_>>())
        .collect();
    let mut aggs = vec![AggJob::WordCount];
    for op in &sc.pipeline_spec().seq {
        if let StageOp::Aggregate(a) = op {
            if !aggs.contains(a) {
                aggs.push(*a);
            }
        }
    }
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut prng = rand::rngs::StdRng::seed_from_u64(sc.shuffle.permutation_seed);
    for agg in &aggs {
        let baseline = agg.run(&records);
        for (name, plan) in [("aware", &aware), ("hash", &hash)] {
            let mut frags = agg.map_fragments(&records, plan);
            frags.shuffle(&mut prng);
            if agg.merge_fragments(&frags) != baseline {
                v.push(Violation::new(
                    "split-merge-equivalence",
                    format!(
                        "{} routed through the {name} plan diverged from the \
                         unrouted job under a shuffled arrival order",
                        agg.label()
                    ),
                ));
            }
        }
    }

    // Pipeline surface: turning shuffle routing on must not change the
    // data product of the scenario's own pipeline.
    let run_pipe = |shuffle: Option<ShuffleParams>| {
        let pipe = Pipeline::new(sc.pipeline_spec());
        let mut env = PipelineEnv {
            dfs,
            meta: MetaPlane::Array(arr),
            faults: sc.has_faults().then(|| sc.fault_config()),
            selection: SelectionConfig::default(),
            analysis: AnalysisConfig::default(),
            retry: RetryPolicy::default(),
            retry_seed: sc.seed,
            shuffle,
        };
        let dirs = ReplicaDirs::new(2);
        pipe.run(&mut env, &dirs.paths(), &Recorder::off())
            .map(|r| r.data_fingerprint())
    };
    let routed = run_pipe(Some(ShuffleParams {
        key_ranges: ranges,
        split_factor: sf,
        aware: true,
    }));
    let plain = run_pipe(None);
    match (routed, plain) {
        (Ok(a), Ok(b)) if a == b => {}
        (Ok(_), Ok(_)) => v.push(Violation::new(
            "split-merge-equivalence",
            "shuffle-routed pipeline produced a different data fingerprint".to_string(),
        )),
        (Err(e), _) | (_, Err(e)) => v.push(Violation::new(
            "split-merge-equivalence",
            format!("pipeline run failed: {e}"),
        )),
    }
}

/// Streaming-ingest oracles: replay the scenario's blocks as a stream
/// through an [`Ingestor`] on the arrival schedule in `sc.ingest`, and
/// enforce, at **every** prefix of the arrival sequence, that the
/// incremental snapshot is byte-identical (serialized) to a from-scratch
/// batch build over the same blocks — including across the scripted
/// mid-commit crash (`crash_commit`/`crash_write`), which tears the
/// ingestor down after an arbitrary write prefix of the commit plan and
/// resumes from whatever epoch stayed durable.
fn ingest_oracles(v: &mut Vec<Violation>, sc: &Scenario, dfs: &Dfs, sep: &Separation) {
    let cfg = IngestConfig {
        policy: sep.clone(),
        compact_every: sc.ingest.compact_every,
        shard_blocks: sc.shard_blocks,
    };
    let target = sc.target_id();
    let dirs = ReplicaDirs::new(2);
    let mut ing = Ingestor::new(cfg.clone());
    let mut live = Dfs::empty(dfs.config().clone());
    // NameNode clone taken mid-stream: CoW registration on append must
    // leave the clone frozen at the block count it saw.
    let mut frozen: Option<(datanet_dfs::NameNode, usize)> = None;
    // Epochs recorded from *successful* commits only, with the snapshot
    // they froze — replayed through the store at the end.
    let mut epochs: Vec<(u64, usize, String)> = Vec::new();
    let mut commits = 0u64;
    let mut crashed = false;
    let mut equivalence_ok = true;

    for (k, b) in dfs.blocks().iter().enumerate() {
        let id = live.append_block(b.records().to_vec());
        let blk = live.block(id);
        ing.append(blk, k as u64 * sc.ingest.gap_us);
        if frozen.is_none() {
            frozen = Some((live.namenode().clone(), live.namenode().block_count()));
        }

        // Just-arrived block: exact answer while pending, never a false
        // negative once sealed.
        let truth_b = blk.subdataset_bytes(target);
        match ing.query(id, target) {
            SizeInfo::Exact(sz) if sz != truth_b => v.push(Violation::new(
                "ingest-pending-exact",
                format!("block {}: exact answer {sz}, truth {truth_b}", id.0),
            )),
            SizeInfo::Absent if truth_b > 0 => v.push(Violation::new(
                "ingest-pending-exact",
                format!(
                    "block {}: holds {truth_b} target bytes but answers Absent",
                    id.0
                ),
            )),
            _ => {}
        }

        // Incremental ≡ rebuild at this prefix (first divergence only —
        // later prefixes inherit the same corruption).
        if equivalence_ok {
            let inc = serde_json::to_string(&ing.snapshot()).expect("snapshot serialises");
            let batch = serde_json::to_string(&ElasticMapArray::build(&live, sep))
                .expect("batch serialises");
            if inc != batch {
                equivalence_ok = false;
                v.push(Violation::new(
                    "ingest-equivalence",
                    format!(
                        "incremental snapshot diverged from the batch build at \
                         prefix {} of {}",
                        k + 1,
                        dfs.block_count()
                    ),
                ));
            }
        }

        // Commit cadence: one durable epoch per compaction batch. The
        // scripted crash hits the `crash_commit`-th attempt, landing only
        // a prefix of the plan's writes before the process "dies".
        if (k + 1) % sc.ingest.compact_every == 0 {
            commits += 1;
            if !crashed && sc.ingest.crash_commit == Some(commits) {
                crashed = true;
                let mut landed = 0usize;
                if let Some(plan) = ing.commit_plan() {
                    let n = (sc.ingest.crash_write % (plan.writes() as u64 + 1)) as usize;
                    landed = n;
                    if let Err(e) = plan.apply_prefix(&dirs.paths(), n) {
                        v.push(Violation::new(
                            "ingest-crash-resume",
                            format!("prefix apply failed: {e}"),
                        ));
                        return;
                    }
                }
                // Tear down and resume from whatever epoch is durable. A
                // store that crashed before its first commit resumes as a
                // fresh epoch-0 ingestor — `Ingestor::resume` owns that
                // edge now, so any error here is a real violation.
                ing = match Ingestor::resume(cfg.clone(), &dirs.paths()) {
                    Ok(resumed) => resumed,
                    Err(e) => {
                        v.push(Violation::new(
                            "ingest-crash-resume",
                            format!("resume failed after a durable-prefix crash: {e}"),
                        ));
                        return;
                    }
                };
                if ing.stats().summaries_built != 0 {
                    v.push(Violation::new(
                        "ingest-crash-resume",
                        "resume re-summarized durable blocks".to_string(),
                    ));
                }
                // Re-feed the arrivals the crash swallowed.
                for rb in &live.blocks()[ing.blocks()..] {
                    ing.append(rb, k as u64 * sc.ingest.gap_us);
                }
                let inc = serde_json::to_string(&ing.snapshot()).expect("snapshot serialises");
                let batch = serde_json::to_string(&ElasticMapArray::build(&live, sep))
                    .expect("batch serialises");
                if inc != batch {
                    v.push(Violation::new(
                        "ingest-crash-resume",
                        format!(
                            "resumed snapshot diverged from the batch build after a \
                             crash {landed} writes into commit {commits}'s plan"
                        ),
                    ));
                }
            } else {
                match ing.commit(&dirs.paths()) {
                    Ok(epoch) => epochs.push((
                        epoch,
                        ing.blocks(),
                        serde_json::to_string(&ing.snapshot()).expect("snapshot serialises"),
                    )),
                    Err(e) => v.push(Violation::new(
                        "ingest-commit",
                        format!("commit {commits} failed: {e}"),
                    )),
                }
            }
        }
    }

    // Final commit so the whole stream is durable.
    match ing.commit(&dirs.paths()) {
        Ok(epoch) => epochs.push((
            epoch,
            ing.blocks(),
            serde_json::to_string(&ing.snapshot()).expect("snapshot serialises"),
        )),
        Err(e) => v.push(Violation::new(
            "ingest-commit",
            format!("final commit failed: {e}"),
        )),
    }
    epochs.dedup_by_key(|(e, _, _)| *e);

    // Every committed epoch replays exactly the snapshot it froze.
    for (epoch, blocks, want) in &epochs {
        match MetaStore::open_replicated_at_epoch(&dirs.paths(), *epoch, 2) {
            Ok(mut store) => {
                if store.manifest().blocks != *blocks {
                    v.push(Violation::new(
                        "epoch-time-travel",
                        format!(
                            "epoch {epoch} manifest says {} blocks, committed {blocks}",
                            store.manifest().blocks
                        ),
                    ));
                    continue;
                }
                let mut maps = Vec::new();
                let mut ok = true;
                for i in 0..store.manifest().shard_count() {
                    match store.shard(i) {
                        Ok(s) => maps.extend_from_slice(s),
                        Err(e) => {
                            v.push(Violation::new(
                                "epoch-time-travel",
                                format!("epoch {epoch} shard {i} unreadable: {e}"),
                            ));
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let arr = ElasticMapArray::from_maps(maps, store.manifest().policy.clone());
                    if &serde_json::to_string(&arr).expect("array serialises") != want {
                        v.push(Violation::new(
                            "epoch-time-travel",
                            format!("epoch {epoch} does not replay the snapshot it froze"),
                        ));
                    }
                }
            }
            Err(e) => v.push(Violation::new(
                "epoch-time-travel",
                format!("epoch {epoch} failed to open: {e}"),
            )),
        }
    }

    // The live store agrees with the in-memory ingestor on the target view.
    match MetaStore::open_replicated(&dirs.paths(), 2) {
        Ok(mut store) => match store.view(target) {
            Ok(view) if view == ing.snapshot().view(target) => {}
            Ok(_) => v.push(Violation::new(
                "ingest-store-view",
                "final persisted view differs from the ingestor's snapshot".to_string(),
            )),
            Err(e) => v.push(Violation::new(
                "ingest-store-view",
                format!("final view failed: {e}"),
            )),
        },
        Err(e) => v.push(Violation::new(
            "ingest-store-view",
            format!("final open failed: {e}"),
        )),
    }

    // CoW: the namenode clone taken after the first arrival never saw the
    // later registrations.
    if let Some((nn, count)) = frozen {
        if nn.block_count() != count {
            v.push(Violation::new(
                "namenode-cow-append",
                format!(
                    "mid-stream namenode clone drifted from {count} to {} blocks",
                    nn.block_count()
                ),
            ));
        }
        if live.namenode().block_count() != live.block_count() {
            v.push(Violation::new(
                "namenode-cow-append",
                format!(
                    "live namenode tracks {} blocks for a {}-block DFS",
                    live.namenode().block_count(),
                    live.block_count()
                ),
            ));
        }
    }
}

/// Multi-tenant serving-plane oracles (DESIGN.md §18).
///
/// * `serve-conservation` — every stream query gets exactly one
///   disposition (the harness relies on `serve`'s own internal
///   completeness assert for the "at least one" half, and checks the
///   counts here): per tenant, `admitted + rejected + shed` equals the
///   queries that tenant issued, and the per-tenant counters match the
///   outcome list.
/// * `serve-fairness` — the three deficit-round-robin invariants that
///   hold for *any* stream by loop structure alone:
///   `granted == rounds_backlogged × quantum`,
///   `served + forfeited == granted`, and
///   `forfeited ≤ busy_periods × (quantum + max_est)`.
/// * `serve-cache-coherence` — for every completed query, rebuild the
///   world at the epoch the outcome claims (replaying the scripted event
///   prefix against a fresh world — `World::apply` is a pure function, so
///   this is exact) and recompute the plan from scratch: the served
///   plan's digest must match the fresh plan's, byte for byte. This is
///   the oracle the planted `stale_serve_cache` bug must trip.
/// * `serve-interleaving` — a second run with a different worker count
///   and schedule seed must produce a byte-identical canonical answers
///   section, and a cache-off run must agree after normalisation (a
///   coherent cache changes where plans come from, never what they are).
fn serve_oracles(v: &mut Vec<Violation>, sc: &Scenario, sep: &Separation, opts: &CheckOptions) {
    let sp = &sc.serve;
    let stream = generate_stream(&StreamConfig {
        tenants: sp.tenants,
        queries: sp.queries,
        gap_us: sp.gap_us,
        subdatasets: sc.subdatasets,
        mix: TenantMix::ALL[(sp.mix % 3) as usize],
        seed: sc.seed,
    });
    let events: Vec<ScriptedEvent> = sp
        .events
        .iter()
        .map(|e| match *e {
            ServeEventPlan::Ingest { at_query, blocks } => ScriptedEvent {
                at_query: at_query.min(sp.queries),
                event: ServeEvent::IngestCommit {
                    blocks: blocks.clamp(1, 4),
                },
            },
            ServeEventPlan::NodeLoss { at_query, node } => ScriptedEvent {
                at_query: at_query.min(sp.queries),
                event: ServeEvent::NodeLoss {
                    node: node % sc.nodes,
                },
            },
        })
        .collect();
    let world = || World::new(sc.build_dfs(), sc.subdatasets, sep.clone(), sc.seed);
    let cfg = ServeConfig {
        workers: sp.workers,
        queue_cap: sp.queue_cap,
        quantum_bytes: sp.quantum_kb * 1024,
        round_us: sp.gap_us.max(1),
        max_wait_rounds: sp.max_wait_rounds,
        cache: true,
        maxflow: false,
        schedule_seed: sp.schedule_seed,
    };
    let run = if opts.stale_serve_cache {
        serve_with_planted_staleness
    } else {
        serve
    };
    let report = run(world(), &stream, &events, &cfg, &Recorder::off());
    let answers = &report.answers;

    // Conservation: dispositions partition the stream, counters agree.
    if answers.outcomes.len() != stream.len() {
        v.push(Violation::new(
            "serve-conservation",
            format!(
                "{} outcomes for a {}-query stream",
                answers.outcomes.len(),
                stream.len()
            ),
        ));
    }
    for ts in &answers.tenants {
        let issued = stream.iter().filter(|q| q.tenant == ts.tenant).count() as u32;
        let (mut c, mut r, mut s) = (0u32, 0u32, 0u32);
        for o in answers.outcomes.iter().filter(|o| o.tenant == ts.tenant) {
            match o.disposition {
                Disposition::Completed { .. } => c += 1,
                Disposition::Rejected { .. } => r += 1,
                Disposition::Shed { .. } => s += 1,
            }
        }
        if c + r + s != issued || (c, r, s) != (ts.admitted, ts.rejected, ts.shed) {
            v.push(Violation::new(
                "serve-conservation",
                format!(
                    "tenant {}: issued {issued}, outcomes {c}+{r}+{s}, \
                     stats {}+{}+{}",
                    ts.tenant, ts.admitted, ts.rejected, ts.shed
                ),
            ));
        }
    }

    // Fairness: the three DRR invariants, per tenant.
    for ts in &answers.tenants {
        if ts.granted_bytes != ts.rounds_backlogged * cfg.quantum_bytes {
            v.push(Violation::new(
                "serve-fairness",
                format!(
                    "tenant {}: granted {} ≠ {} backlogged rounds × quantum {}",
                    ts.tenant, ts.granted_bytes, ts.rounds_backlogged, cfg.quantum_bytes
                ),
            ));
        }
        if ts.served_bytes + ts.forfeited_bytes != ts.granted_bytes {
            v.push(Violation::new(
                "serve-fairness",
                format!(
                    "tenant {}: served {} + forfeited {} ≠ granted {}",
                    ts.tenant, ts.served_bytes, ts.forfeited_bytes, ts.granted_bytes
                ),
            ));
        }
        let bound = ts.busy_periods as u64 * (cfg.quantum_bytes + ts.max_est_bytes);
        if ts.forfeited_bytes > bound {
            v.push(Violation::new(
                "serve-fairness",
                format!(
                    "tenant {}: forfeited {} exceeds {} busy periods × \
                     (quantum + max est {})",
                    ts.tenant, ts.forfeited_bytes, ts.busy_periods, ts.max_est_bytes
                ),
            ));
        }
    }

    // Cache coherence: replay every event prefix to rebuild the world at
    // each reachable epoch, then demand the served digest equal a fresh
    // plan's digest at the epoch the outcome claims.
    let mut worlds = vec![world()];
    for ev in &events {
        let mut w = worlds.last().expect("never empty").clone();
        w.apply(&ev.event);
        worlds.push(w);
    }
    let mut fresh: std::collections::HashMap<(u64, datanet::EpochKey), Option<u64>> =
        std::collections::HashMap::new();
    for o in &answers.outcomes {
        let Disposition::Completed {
            sub,
            epoch,
            plan_digest: served,
            ..
        } = o.disposition
        else {
            continue;
        };
        let want = *fresh.entry((sub, epoch)).or_insert_with(|| {
            worlds
                .iter()
                .find(|w| w.epoch_key() == epoch)
                .map(|w| plan_digest(&w.plan_batch(&[SubDatasetId(sub)], cfg.maxflow)[0]))
        });
        match want {
            None => v.push(Violation::new(
                "serve-cache-coherence",
                format!(
                    "query {} completed at epoch {epoch:?}, which no event \
                     prefix reaches",
                    o.id
                ),
            )),
            Some(want) if want != served => v.push(Violation::new(
                "serve-cache-coherence",
                format!(
                    "query {} (sub-dataset {sub}) served plan digest \
                     {served:#018x} at epoch {epoch:?}; a fresh plan at that \
                     epoch digests to {want:#018x} — a stale cached plan",
                    o.id
                ),
            )),
            Some(_) => {}
        }
    }

    // Interleaving determinism: the canonical answers must not see the
    // execution plane; and a cache-off run must agree after normalisation.
    let other = run(
        world(),
        &stream,
        &events,
        &ServeConfig {
            workers: sp.workers + 3,
            schedule_seed: sp.schedule_seed.wrapping_add(0x9E37_79B9),
            ..cfg
        },
        &Recorder::off(),
    );
    if other.answers.canonical_json() != answers.canonical_json() {
        v.push(Violation::new(
            "serve-interleaving",
            format!(
                "answers changed between {} and {} workers",
                cfg.workers,
                sp.workers + 3
            ),
        ));
    }
    let uncached = run(
        world(),
        &stream,
        &events,
        &ServeConfig {
            cache: false,
            ..cfg
        },
        &Recorder::off(),
    );
    if uncached.answers.normalized() != answers.normalized() {
        v.push(Violation::new(
            "serve-interleaving",
            "cache-on and cache-off runs disagree after normalisation".to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tolerance calibration sweep: prints the worst observed makespan
    /// ratios (net of the same slacks the oracle grants) and any
    /// violations over a wide seed range, including the 1900..2100
    /// family where seed 2017's light-block worlds live. Run with
    /// `cargo test -p datanet-check --release -- --ignored calibrate`
    /// when re-tuning `MAKESPAN_TOL_*`.
    #[test]
    #[ignore = "calibration sweep, minutes of runtime"]
    fn calibrate_makespan_tolerances() {
        let mut worst_ff = (0.0f64, 0u64);
        let mut worst_dn = (0.0f64, 0u64);
        let mut failures = Vec::new();
        for seed in (0..600u64).chain(1900..2100) {
            let sc = Scenario::from_seed(seed);
            let dfs = sc.build_dfs();
            let target = sc.target_id();
            let truth = dfs.subdataset_distribution(target);
            let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(sc.alpha));
            let view = arr.view(target);
            let cfg = SelectionConfig::default();
            let loc = run_selection_traced(
                &dfs,
                &truth,
                &mut LocalityScheduler::new(&dfs),
                &cfg,
                &Recorder::off(),
            );
            let dn = run_selection_traced(
                &dfs,
                &truth,
                &mut DataNetScheduler::new(&dfs, &view),
                &cfg,
                &Recorder::off(),
            );
            let plan = FordFulkersonPlanner::new(&dfs, &view).plan();
            let ff = run_selection_traced(
                &dfs,
                &truth,
                &mut PlannedScheduler::new(&plan, dfs.namenode()),
                &cfg,
                &Recorder::off(),
            );
            let slack = cfg.task_overhead.as_secs_f64() * MAKESPAN_SLACK_TASKS;
            let count_slack = cfg.task_overhead.as_secs_f64() * excess_peak_tasks(&ff, &dn) as f64;
            let r_ff = ff.end.as_secs_f64() / (dn.end.as_secs_f64() + slack + count_slack);
            let r_dn = dn.end.as_secs_f64() / (loc.end.as_secs_f64() + slack);
            if r_ff > worst_ff.0 {
                worst_ff = (r_ff, seed);
            }
            if r_dn > worst_dn.0 {
                worst_dn = (r_dn, seed);
            }
            let out = check_scenario(&sc);
            if !out.passed() {
                failures.push((seed, out.violations));
            }
        }
        println!(
            "worst ff/greedy ratio:      {:.4} (seed {})",
            worst_ff.0, worst_ff.1
        );
        println!(
            "worst greedy/locality ratio: {:.4} (seed {})",
            worst_dn.0, worst_dn.1
        );
        for (seed, vs) in &failures {
            println!("seed {seed} FAILED:");
            for v in vs {
                println!("  {v}");
            }
        }
        assert!(failures.is_empty(), "{} seeds failed", failures.len());
    }
}
