//! Replica placement policies.
//!
//! HDFS places block replicas without looking at block *content* — the root
//! cause of the paper's problem. Two standard policies are provided:
//!
//! * [`RandomPlacement`] — replicas on distinct nodes chosen uniformly at
//!   random (the model used in the paper's analysis, Section II-B).
//! * [`RackAwarePlacement`] — the classic HDFS default: first replica on a
//!   "writer" node, second and third together on a different rack.

use crate::ids::{BlockId, NodeId};
use crate::topology::Topology;
use rand::seq::SliceRandom;
use rand::Rng;

/// Chooses the nodes that store each block's replicas.
pub trait PlacementPolicy {
    /// Pick `replication` distinct nodes for `block`.
    ///
    /// Implementations must return `min(replication, topology.len())`
    /// distinct nodes.
    fn place<R: Rng + ?Sized>(
        &self,
        block: BlockId,
        topology: &Topology,
        replication: usize,
        rng: &mut R,
    ) -> Vec<NodeId>;
}

/// Uniformly random distinct nodes.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPlacement;

impl PlacementPolicy for RandomPlacement {
    fn place<R: Rng + ?Sized>(
        &self,
        _block: BlockId,
        topology: &Topology,
        replication: usize,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let nodes: Vec<NodeId> = topology.nodes().collect();
        let take = replication.min(topology.len());
        nodes.choose_multiple(rng, take).copied().collect()
    }
}

/// HDFS-default-style placement: replica 1 on a random node; replicas 2 and
/// 3 on a common different rack (when one exists); further replicas random.
#[derive(Debug, Clone, Copy, Default)]
pub struct RackAwarePlacement;

impl PlacementPolicy for RackAwarePlacement {
    fn place<R: Rng + ?Sized>(
        &self,
        _block: BlockId,
        topology: &Topology,
        replication: usize,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let replication = replication.min(topology.len());
        if replication == 0 {
            return Vec::new();
        }
        let all: Vec<NodeId> = topology.nodes().collect();
        let first = *all.choose(rng).expect("topology is non-empty");
        let mut chosen = vec![first];

        // Candidate pool for the off-rack pair.
        let off_rack: Vec<NodeId> = all
            .iter()
            .copied()
            .filter(|&n| !topology.same_rack(n, first))
            .collect();
        let mut pool = if off_rack.is_empty() {
            all.clone()
        } else {
            off_rack
        };
        pool.retain(|n| !chosen.contains(n));
        pool.shuffle(rng);
        for n in pool {
            if chosen.len() >= replication.min(3) {
                break;
            }
            chosen.push(n);
        }
        // Any remaining replicas: uniformly among unused nodes.
        let mut rest: Vec<NodeId> = all.into_iter().filter(|n| !chosen.contains(n)).collect();
        rest.shuffle(rng);
        chosen.extend(
            rest.into_iter()
                .take(replication - chosen.len().min(replication)),
        );
        chosen.truncate(replication);
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn distinct(nodes: &[NodeId]) -> bool {
        nodes.iter().collect::<HashSet<_>>().len() == nodes.len()
    }

    #[test]
    fn random_placement_distinct_and_sized() {
        let t = Topology::single_rack(32);
        let mut rng = StdRng::seed_from_u64(1);
        for b in 0..100 {
            let p = RandomPlacement.place(BlockId(b), &t, 3, &mut rng);
            assert_eq!(p.len(), 3);
            assert!(distinct(&p));
            assert!(p.iter().all(|n| n.0 < 32));
        }
    }

    #[test]
    fn random_placement_clamps_to_cluster_size() {
        let t = Topology::single_rack(2);
        let mut rng = StdRng::seed_from_u64(1);
        let p = RandomPlacement.place(BlockId(0), &t, 3, &mut rng);
        assert_eq!(p.len(), 2);
        assert!(distinct(&p));
    }

    #[test]
    fn random_placement_covers_all_nodes_eventually() {
        let t = Topology::single_rack(8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = HashSet::new();
        for b in 0..200 {
            for n in RandomPlacement.place(BlockId(b), &t, 3, &mut rng) {
                seen.insert(n);
            }
        }
        assert_eq!(seen.len(), 8, "placement should touch every node");
    }

    #[test]
    fn rack_aware_puts_second_replica_off_rack() {
        let t = Topology::new(16, 4);
        let mut rng = StdRng::seed_from_u64(2);
        for b in 0..100 {
            let p = RackAwarePlacement.place(BlockId(b), &t, 3, &mut rng);
            assert_eq!(p.len(), 3);
            assert!(distinct(&p));
            assert!(
                !t.same_rack(p[0], p[1]),
                "replica 2 must be off the writer's rack"
            );
            assert!(
                !t.same_rack(p[0], p[2]),
                "replica 3 must be off the writer's rack"
            );
        }
    }

    #[test]
    fn rack_aware_degrades_on_single_rack() {
        let t = Topology::single_rack(8);
        let mut rng = StdRng::seed_from_u64(3);
        let p = RackAwarePlacement.place(BlockId(0), &t, 3, &mut rng);
        assert_eq!(p.len(), 3);
        assert!(distinct(&p));
    }

    #[test]
    fn placement_is_deterministic_under_seed() {
        let t = Topology::new(32, 8);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for blk in 0..20 {
            assert_eq!(
                RandomPlacement.place(BlockId(blk), &t, 3, &mut a),
                RandomPlacement.place(BlockId(blk), &t, 3, &mut b)
            );
        }
    }
}
