//! HDFS block files.
//!
//! The DFS splits an incoming record stream into fixed-capacity blocks in
//! arrival order — exactly how HDFS chunks a chronologically-written log
//! file. A block therefore contains "many sub-datasets", and one sub-dataset
//! spans many blocks (Section I of the paper).

use crate::ids::{BlockId, SubDatasetId};
use crate::record::Record;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A sealed block file holding records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    id: BlockId,
    records: Vec<Record>,
    bytes: u64,
}

impl Block {
    /// Build a block from records. `bytes` is derived from record sizes.
    pub fn new(id: BlockId, records: Vec<Record>) -> Self {
        let bytes = records.iter().map(|r| r.size as u64).sum();
        Self { id, records, bytes }
    }

    /// The block id.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// Records in write order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Total payload bytes stored in this block.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Bytes in this block belonging to sub-dataset `s` — the paper's
    /// `|b_i ∩ s_j|`. O(records); the whole point of ElasticMap is to avoid
    /// calling this at query time, but it is the ground truth that tests and
    /// the accuracy evaluation (Figure 9) compare against.
    pub fn subdataset_bytes(&self, s: SubDatasetId) -> u64 {
        self.records
            .iter()
            .filter(|r| r.subdataset == s)
            .map(|r| r.size as u64)
            .sum()
    }

    /// Exact per-sub-dataset byte sizes within this block: the ground-truth
    /// version of Table I. Single scan over the records.
    pub fn subdataset_sizes(&self) -> HashMap<SubDatasetId, u64> {
        let mut sizes = HashMap::new();
        for r in &self.records {
            *sizes.entry(r.subdataset).or_insert(0u64) += r.size as u64;
        }
        sizes
    }

    /// Iterator over records of one sub-dataset (the filter step of every
    /// sub-dataset analysis job).
    pub fn filter(&self, s: SubDatasetId) -> impl Iterator<Item = &Record> {
        self.records.iter().filter(move |r| r.subdataset == s)
    }
}

/// Lightweight block descriptor (id + size), used where the record payload
/// is not needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockMeta {
    /// The block id.
    pub id: BlockId,
    /// Total payload bytes.
    pub bytes: u64,
    /// Number of records.
    pub records: usize,
}

impl From<&Block> for BlockMeta {
    fn from(b: &Block) -> Self {
        Self {
            id: b.id(),
            bytes: b.bytes(),
            records: b.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Block {
        Block::new(
            BlockId(0),
            vec![
                Record::new(SubDatasetId(1), 0, 100, 1),
                Record::new(SubDatasetId(2), 1, 50, 2),
                Record::new(SubDatasetId(1), 2, 25, 3),
            ],
        )
    }

    #[test]
    fn byte_accounting() {
        let b = block();
        assert_eq!(b.bytes(), 175);
        assert_eq!(b.len(), 3);
        assert_eq!(b.subdataset_bytes(SubDatasetId(1)), 125);
        assert_eq!(b.subdataset_bytes(SubDatasetId(2)), 50);
        assert_eq!(b.subdataset_bytes(SubDatasetId(3)), 0);
    }

    #[test]
    fn sizes_table_matches_per_subdataset_query() {
        let b = block();
        let sizes = b.subdataset_sizes();
        assert_eq!(sizes.len(), 2);
        for (&s, &bytes) in &sizes {
            assert_eq!(b.subdataset_bytes(s), bytes);
        }
        let total: u64 = sizes.values().sum();
        assert_eq!(total, b.bytes());
    }

    #[test]
    fn filter_returns_matching_records() {
        let b = block();
        let got: Vec<_> = b.filter(SubDatasetId(1)).collect();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|r| r.subdataset == SubDatasetId(1)));
    }

    #[test]
    fn empty_block() {
        let b = Block::new(BlockId(9), vec![]);
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
        assert!(b.subdataset_sizes().is_empty());
    }

    #[test]
    fn meta_from_block() {
        let m = BlockMeta::from(&block());
        assert_eq!(m.id, BlockId(0));
        assert_eq!(m.bytes, 175);
        assert_eq!(m.records, 3);
    }
}
