//! Log records and their lazily-generated payloads.
//!
//! A [`Record`] is the unit the paper's datasets are made of: "lists of
//! records, each consisting of several fields such as source/user id, log
//! time, destination, etc." We store the fields the algorithms need
//! (sub-dataset id, timestamp, on-disk size) plus a deterministic `seed`
//! from which [`Payload`] regenerates record content on demand — words for
//! WordCount/Histogram, a rating for Moving Average, a token sequence for
//! Top-K similarity search. This keeps a 256-block dataset in memory while
//! still letting jobs do real per-record computation.

use crate::ids::SubDatasetId;
use serde::{Deserialize, Serialize};

/// One log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Which sub-dataset this record belongs to.
    pub subdataset: SubDatasetId,
    /// Event time (seconds since dataset epoch). Records are written to the
    /// DFS in timestamp order, which is what creates content clustering.
    pub timestamp: u64,
    /// Bytes this record occupies in its block file.
    pub size: u32,
    /// Seed for deterministic payload generation.
    pub seed: u64,
}

impl Record {
    /// Create a record.
    ///
    /// # Panics
    /// Panics if `size == 0`: zero-byte records would make size accounting
    /// (and Equation 6's `δ`) degenerate.
    pub fn new(subdataset: SubDatasetId, timestamp: u64, size: u32, seed: u64) -> Self {
        assert!(size > 0, "records must occupy at least one byte");
        Self {
            subdataset,
            timestamp,
            size,
            seed,
        }
    }

    /// The record's regenerable content.
    pub fn payload(&self) -> Payload {
        Payload { seed: self.seed }
    }
}

/// Deterministic content generator for one record.
///
/// All derivations use SplitMix64 steps from the record seed, so the same
/// record always yields the same words/rating/sequence on every node and
/// every run — a requirement for reproducible experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Payload {
    seed: u64,
}

/// Size of the synthetic vocabulary that [`Payload::words`] draws from.
pub const VOCABULARY: usize = 8192;

impl Payload {
    /// SplitMix64 step — the standard 64-bit finalizer; good enough for
    /// payload synthesis and extremely fast.
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The `i`-th derived 64-bit value.
    #[inline]
    fn derive(&self, i: u64) -> u64 {
        Self::mix(self.seed ^ Self::mix(i))
    }

    /// Word indices of a review text of `n` words. Indices follow an
    /// approximate power law over the vocabulary (natural text is Zipfian),
    /// which gives Word Count / Histogram realistic key skew.
    pub fn word_indices(&self, n: usize) -> impl Iterator<Item = u32> + '_ {
        (0..n as u64).map(move |i| {
            let r = self.derive(i);
            // Map a uniform u in (0,1] to a power-law rank: floor(V * u^3)
            // concentrates mass on low indices (top word ~ u^3 < 1/V).
            let u = (r >> 11) as f64 / (1u64 << 53) as f64;
            let rank = ((VOCABULARY as f64) * u * u * u) as u32;
            rank.min(VOCABULARY as u32 - 1)
        })
    }

    /// Words as strings (`w0`, `w1`, …). Allocates; prefer
    /// [`Payload::word_indices`] on hot paths.
    pub fn words(&self, n: usize) -> Vec<String> {
        self.word_indices(n).map(|i| format!("w{i}")).collect()
    }

    /// A rating in `[0.0, 10.0)` — the Moving Average input.
    pub fn rating(&self) -> f64 {
        (self.derive(u64::MAX) >> 11) as f64 / (1u64 << 53) as f64 * 10.0
    }

    /// A token sequence of length `n` over alphabet `0..alphabet` — the
    /// Top-K similarity-search input.
    pub fn sequence(&self, n: usize, alphabet: u32) -> Vec<u32> {
        assert!(alphabet > 0, "alphabet must be non-empty");
        (0..n as u64)
            .map(|i| (self.derive(i ^ 0xACE1_u64) % alphabet as u64) as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seed: u64) -> Record {
        Record::new(SubDatasetId(1), 0, 100, seed)
    }

    #[test]
    fn payload_is_deterministic() {
        let a = rec(42).payload();
        let b = rec(42).payload();
        assert_eq!(a.words(10), b.words(10));
        assert_eq!(a.rating(), b.rating());
        assert_eq!(a.sequence(16, 4), b.sequence(16, 4));
    }

    #[test]
    fn different_seeds_differ() {
        let a = rec(1).payload();
        let b = rec(2).payload();
        assert_ne!(a.words(20), b.words(20));
        assert_ne!(a.sequence(20, 4), b.sequence(20, 4));
    }

    #[test]
    fn word_indices_in_vocabulary() {
        let p = rec(7).payload();
        for w in p.word_indices(1000) {
            assert!((w as usize) < VOCABULARY);
        }
    }

    #[test]
    fn word_distribution_is_skewed() {
        // Power-law mapping: the low quarter of the vocabulary should carry
        // well over half of the mass.
        let p = rec(123).payload();
        let n = 50_000;
        let low = p
            .word_indices(n)
            .filter(|&w| (w as usize) < VOCABULARY / 4)
            .count();
        assert!(
            low > n / 2,
            "expected >50% of words in the low quarter, got {low}/{n}"
        );
    }

    #[test]
    fn rating_in_range() {
        for s in 0..100 {
            let r = rec(s).payload().rating();
            assert!((0.0..10.0).contains(&r));
        }
    }

    #[test]
    fn sequence_respects_alphabet() {
        let p = rec(9).payload();
        for t in p.sequence(256, 5) {
            assert!(t < 5);
        }
    }

    #[test]
    #[should_panic]
    fn zero_size_record_rejected() {
        Record::new(SubDatasetId(0), 0, 0, 0);
    }

    #[test]
    #[should_panic]
    fn empty_alphabet_rejected() {
        rec(0).payload().sequence(4, 0);
    }
}
