//! The NameNode: block-location metadata.
//!
//! Keeps exactly what HDFS keeps — which nodes hold each block's replicas —
//! and deliberately nothing about sub-dataset content. Both the baseline
//! locality scheduler and DataNet's bipartite graph are built from these
//! mappings.

use crate::ids::{BlockId, NodeId};
use serde::{DeError, Deserialize, Serialize, Value};
use std::sync::Arc;

/// The actual metadata tables, shared immutably between NameNode handles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Tables {
    /// `replicas[b]` = nodes holding block `b`. Dense by BlockId.
    replicas: Vec<Vec<NodeId>>,
    /// `local_blocks[n]` = blocks with a replica on node `n`. Dense by NodeId.
    local_blocks: Vec<Vec<BlockId>>,
}

/// Block → replica-locations metadata plus the inverted node → blocks index.
///
/// The tables live behind an [`Arc`]: cloning a NameNode hands out another
/// reference to the same immutable snapshot (a refcount bump, not a
/// per-block deep copy), which is what lets every planner instance carry
/// its own handle for free — the metadata hot path constructs thousands of
/// planners against one cluster. [`NameNode::register`] copies-on-write,
/// so a writer never mutates snapshots other handles are reading.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NameNode {
    tables: Arc<Tables>,
    /// Monotonic mutation counter: bumped exactly once per metadata
    /// mutation ([`NameNode::register`]). Plan caches key on this — two
    /// handles with equal epochs observed the same mutation history, so
    /// any plan computed against one is valid against the other.
    epoch: u64,
}

impl NameNode {
    /// An empty NameNode for a cluster of `nodes` data nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            tables: Arc::new(Tables {
                replicas: Vec::new(),
                local_blocks: vec![Vec::new(); nodes],
            }),
            epoch: 0,
        }
    }

    /// The metadata epoch: how many mutations this handle has observed.
    /// Clones freeze the epoch alongside the snapshot they share, so a
    /// reader can tell whether a writer moved on without comparing tables.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Register block `b` with its replica locations. Blocks must be
    /// registered in id order (the writer seals them in order). Copies the
    /// tables first if other handles share this snapshot.
    ///
    /// # Panics
    /// Panics if the block id is out of order, locations are empty, or a
    /// location refers to an unknown node.
    pub fn register(&mut self, b: BlockId, locations: Vec<NodeId>) {
        let tables = Arc::make_mut(&mut self.tables);
        assert_eq!(
            b.index(),
            tables.replicas.len(),
            "blocks must be registered densely in order"
        );
        assert!(!locations.is_empty(), "a block needs at least one replica");
        for &n in &locations {
            assert!(
                n.index() < tables.local_blocks.len(),
                "location {n} outside cluster of {} nodes",
                tables.local_blocks.len()
            );
            tables.local_blocks[n.index()].push(b);
        }
        tables.replicas.push(locations);
        self.epoch += 1;
    }

    /// Number of registered blocks.
    pub fn block_count(&self) -> usize {
        self.tables.replicas.len()
    }

    /// Number of data nodes.
    pub fn node_count(&self) -> usize {
        self.tables.local_blocks.len()
    }

    /// Replica locations of a block.
    pub fn replicas(&self, b: BlockId) -> &[NodeId] {
        &self.tables.replicas[b.index()]
    }

    /// Blocks with a replica on node `n`.
    pub fn blocks_on(&self, n: NodeId) -> &[BlockId] {
        &self.tables.local_blocks[n.index()]
    }

    /// Whether node `n` holds a replica of block `b`.
    pub fn is_local(&self, b: BlockId, n: NodeId) -> bool {
        self.replicas(b).contains(&n)
    }

    /// Iterate `(block, replicas)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &[NodeId])> {
        self.tables
            .replicas
            .iter()
            .enumerate()
            .map(|(i, locs)| (BlockId(i as u32), locs.as_slice()))
    }

    /// Replica locations of `b` that are still alive under `alive`
    /// (indexed by node). Replicas on nodes outside the mask count as dead.
    pub fn surviving_replicas(&self, b: BlockId, alive: &[bool]) -> Vec<NodeId> {
        self.replicas(b)
            .iter()
            .copied()
            .filter(|n| alive.get(n.index()).copied().unwrap_or(false))
            .collect()
    }

    /// Blocks that have lost *every* replica under `alive` — data the
    /// cluster can no longer serve. HDFS reports these as "missing blocks";
    /// the fault-tolerant engine refuses to silently drop them.
    pub fn lost_blocks(&self, alive: &[bool]) -> Vec<BlockId> {
        self.iter()
            .filter(|(_, locs)| {
                locs.iter()
                    .all(|n| !alive.get(n.index()).copied().unwrap_or(false))
            })
            .map(|(b, _)| b)
            .collect()
    }
}

// Hand-written serde keeping the same wire shape the derived impl used when
// the tables were inline fields, so checkpoints written before the Arc
// snapshot refactor still load.
impl Serialize for NameNode {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("replicas".to_string(), self.tables.replicas.to_value()),
            (
                "local_blocks".to_string(),
                self.tables.local_blocks.to_value(),
            ),
            ("epoch".to_string(), self.epoch.to_value()),
        ])
    }
}

impl Deserialize for NameNode {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Object(fields) = value else {
            return Err(DeError::expected("NameNode object", value));
        };
        let mut replicas = None;
        let mut local_blocks = None;
        let mut epoch = None;
        for (k, v) in fields {
            match k.as_str() {
                "replicas" => replicas = Some(Vec::<Vec<NodeId>>::from_value(v)?),
                "local_blocks" => local_blocks = Some(Vec::<Vec<BlockId>>::from_value(v)?),
                "epoch" => epoch = Some(u64::from_value(v)?),
                _ => {}
            }
        }
        let replicas = replicas.ok_or_else(|| DeError::msg("NameNode: missing replicas"))?;
        // Checkpoints written before the epoch counter existed lack the
        // field; every historical mutation was a `register`, so the block
        // count reconstructs exactly the epoch the writer would have had.
        let epoch = epoch.unwrap_or(replicas.len() as u64);
        Ok(Self {
            tables: Arc::new(Tables {
                replicas,
                local_blocks: local_blocks
                    .ok_or_else(|| DeError::msg("NameNode: missing local_blocks"))?,
            }),
            epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NameNode {
        let mut nn = NameNode::new(4);
        nn.register(BlockId(0), vec![NodeId(0), NodeId(1), NodeId(2)]);
        nn.register(BlockId(1), vec![NodeId(1), NodeId(2), NodeId(3)]);
        nn.register(BlockId(2), vec![NodeId(0), NodeId(3)]);
        nn
    }

    #[test]
    fn forward_and_inverted_indexes_agree() {
        let nn = sample();
        assert_eq!(nn.block_count(), 3);
        assert_eq!(nn.node_count(), 4);
        for (b, locs) in nn.iter() {
            for &n in locs {
                assert!(nn.blocks_on(n).contains(&b));
                assert!(nn.is_local(b, n));
            }
        }
        assert_eq!(nn.blocks_on(NodeId(0)), &[BlockId(0), BlockId(2)]);
        assert!(!nn.is_local(BlockId(0), NodeId(3)));
    }

    #[test]
    fn replica_counts() {
        let nn = sample();
        assert_eq!(nn.replicas(BlockId(0)).len(), 3);
        assert_eq!(nn.replicas(BlockId(2)).len(), 2);
    }

    #[test]
    fn surviving_replicas_excludes_dead_nodes() {
        let nn = sample();
        let alive = [true, false, true, false];
        assert_eq!(
            nn.surviving_replicas(BlockId(0), &alive),
            vec![NodeId(0), NodeId(2)]
        );
        assert_eq!(nn.surviving_replicas(BlockId(1), &alive), vec![NodeId(2)]);
        // Block 2 lives on nodes 0 and 3; only 0 survives.
        assert_eq!(nn.surviving_replicas(BlockId(2), &alive), vec![NodeId(0)]);
        assert!(nn.lost_blocks(&alive).is_empty());
    }

    #[test]
    fn lost_blocks_reports_fully_dead_blocks() {
        let nn = sample();
        // Kill nodes 0 and 3: block 2 (replicas on 0, 3) loses everything.
        let alive = [false, true, true, false];
        assert_eq!(nn.lost_blocks(&alive), vec![BlockId(2)]);
        assert!(nn.surviving_replicas(BlockId(2), &alive).is_empty());
        // Nothing survives an all-dead cluster.
        assert_eq!(nn.lost_blocks(&[false; 4]).len(), 3);
    }

    #[test]
    fn serde_preserves_pre_snapshot_wire_shape() {
        let nn = sample();
        let v = nn.to_value();
        // Same leading field names/order the derived impl on inline fields
        // produced; the epoch counter is appended after them.
        let Value::Object(fields) = &v else {
            panic!("expected object")
        };
        assert_eq!(fields[0].0, "replicas");
        assert_eq!(fields[1].0, "local_blocks");
        assert_eq!(fields[2].0, "epoch");
        let back = NameNode::from_value(&v).unwrap();
        assert_eq!(back, nn);
    }

    #[test]
    fn pre_epoch_checkpoints_reconstruct_the_epoch() {
        // A wire document written before the epoch counter existed: only
        // the two table fields. Loading must reconstruct epoch = block
        // count (each historical mutation was one register).
        let nn = sample();
        let Value::Object(mut fields) = nn.to_value() else {
            panic!("expected object")
        };
        fields.retain(|(k, _)| k != "epoch");
        let back = NameNode::from_value(&Value::Object(fields)).unwrap();
        assert_eq!(back.epoch(), 3);
        assert_eq!(back, nn);
    }

    /// Satellite acceptance: every mutation bumps the epoch exactly once,
    /// and the counter is monotonically readable from any handle.
    #[test]
    fn every_mutation_bumps_the_epoch_exactly_once() {
        let mut nn = NameNode::new(4);
        assert_eq!(nn.epoch(), 0);
        let mut last = 0;
        for b in 0..10u32 {
            nn.register(BlockId(b), vec![NodeId(b % 4)]);
            assert_eq!(nn.epoch(), last + 1, "register must bump exactly once");
            last = nn.epoch();
        }
        // Reads never move the counter.
        let _ = nn.block_count();
        let _ = nn.replicas(BlockId(0));
        let _ = nn.lost_blocks(&[true; 4]);
        assert_eq!(nn.epoch(), last);
    }

    #[test]
    fn clones_freeze_the_epoch_with_the_snapshot() {
        let nn = sample();
        let frozen = nn.clone();
        let mut writer = nn.clone();
        writer.register(BlockId(3), vec![NodeId(1)]);
        assert_eq!(frozen.epoch(), 3, "reader keeps the epoch it saw");
        assert_eq!(writer.epoch(), 4, "writer moved on");
        assert_ne!(frozen, writer);
    }

    #[test]
    fn register_after_clone_does_not_disturb_the_clone() {
        let nn = sample();
        let mut writer = nn.clone();
        writer.register(BlockId(3), vec![NodeId(1)]);
        assert_eq!(nn.block_count(), 3);
        assert_eq!(writer.block_count(), 4);
    }

    #[test]
    #[should_panic]
    fn out_of_order_registration_panics() {
        let mut nn = NameNode::new(2);
        nn.register(BlockId(1), vec![NodeId(0)]);
    }

    #[test]
    #[should_panic]
    fn empty_locations_panics() {
        let mut nn = NameNode::new(2);
        nn.register(BlockId(0), vec![]);
    }

    #[test]
    #[should_panic]
    fn unknown_node_panics() {
        let mut nn = NameNode::new(2);
        nn.register(BlockId(0), vec![NodeId(7)]);
    }
}
