//! The distributed file system facade: write path and queries.
//!
//! [`Dfs::write_dataset`] streams records into fixed-size blocks in arrival
//! order, seals each full block, and asks the placement policy for replica
//! locations — the full HDFS write pipeline at the granularity the paper
//! cares about.

use crate::block::Block;
use crate::ids::{BlockId, NodeId, SubDatasetId};
use crate::namenode::NameNode;
use crate::placement::{PlacementPolicy, RandomPlacement};
use crate::record::Record;
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a DFS instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DfsConfig {
    /// Block capacity in bytes. The paper uses 64 MB; experiments here use a
    /// scaled-down default (see DESIGN.md — the simulator's behaviour is
    /// byte-ratio-invariant).
    pub block_size: u64,
    /// Replication factor (paper: 3).
    pub replication: usize,
    /// Data-node fleet.
    pub topology: Topology,
    /// Seed for placement randomness.
    pub seed: u64,
}

impl DfsConfig {
    /// The paper's setup at scale factor 1: 64 MB blocks, 3-way replication,
    /// single-rack cluster of `nodes`.
    pub fn paper(nodes: u32) -> Self {
        Self {
            block_size: 64 * 1024 * 1024,
            replication: 3,
            topology: Topology::single_rack(nodes),
            seed: 0xDA7A_0001,
        }
    }

    /// Scaled-down variant for laptop-scale experiments: `block_size` is
    /// divided by `factor`, keeping the same number of blocks per dataset
    /// when generators scale record volume by the same factor.
    pub fn paper_scaled(nodes: u32, factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        let mut c = Self::paper(nodes);
        c.block_size = (c.block_size / factor).max(1);
        c
    }
}

/// An in-memory DFS instance: sealed blocks plus NameNode metadata.
#[derive(Debug, Clone)]
pub struct Dfs {
    config: DfsConfig,
    blocks: Vec<Block>,
    namenode: NameNode,
}

impl Dfs {
    /// Write a dataset: chunk `records` (in stream order) into blocks of
    /// `config.block_size` bytes and place replicas with `policy`.
    ///
    /// A record never straddles blocks (HDFS records are line-oriented; the
    /// paper's block boundaries fall between records). A block is sealed
    /// when adding the next record would exceed capacity.
    pub fn write_dataset<P: PlacementPolicy>(
        config: DfsConfig,
        records: impl IntoIterator<Item = Record>,
        policy: &P,
    ) -> Self {
        assert!(config.block_size > 0, "block size must be positive");
        assert!(config.replication > 0, "replication must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut namenode = NameNode::new(config.topology.len());
        let mut blocks: Vec<Block> = Vec::new();
        let mut current: Vec<Record> = Vec::new();
        let mut current_bytes = 0u64;

        let seal = |records: &mut Vec<Record>,
                    blocks: &mut Vec<Block>,
                    nn: &mut NameNode,
                    rng: &mut StdRng| {
            if records.is_empty() {
                return;
            }
            let id = BlockId(blocks.len() as u32);
            let block = Block::new(id, std::mem::take(records));
            let locations = policy.place(id, &config.topology, config.replication, rng);
            nn.register(id, locations);
            blocks.push(block);
        };

        for r in records {
            if current_bytes + r.size as u64 > config.block_size && !current.is_empty() {
                seal(&mut current, &mut blocks, &mut namenode, &mut rng);
                current_bytes = 0;
            }
            current_bytes += r.size as u64;
            current.push(r);
        }
        seal(&mut current, &mut blocks, &mut namenode, &mut rng);

        Self {
            config,
            blocks,
            namenode,
        }
    }

    /// Convenience write with [`RandomPlacement`] (the paper's model).
    pub fn write_random(config: DfsConfig, records: impl IntoIterator<Item = Record>) -> Self {
        Self::write_dataset(config, records, &RandomPlacement)
    }

    /// An empty DFS ready for streaming appends via [`Dfs::append_block`].
    pub fn empty(config: DfsConfig) -> Self {
        assert!(config.block_size > 0, "block size must be positive");
        assert!(config.replication > 0, "replication must be positive");
        let namenode = NameNode::new(config.topology.len());
        Self {
            config,
            blocks: Vec::new(),
            namenode,
        }
    }

    /// Append one pre-chunked block of records with [`RandomPlacement`].
    /// See [`Dfs::append_block_with`].
    pub fn append_block(&mut self, records: Vec<Record>) -> BlockId {
        self.append_block_with(records, &RandomPlacement)
    }

    /// Append one pre-chunked block: seal `records` as the next block, place
    /// its replicas, and register it with the NameNode (a copy-on-write
    /// update — handles cloned earlier keep seeing the shorter snapshot).
    ///
    /// Placement randomness is drawn from a per-block stream derived from
    /// `config.seed` and the block id, so a block's replica locations do not
    /// depend on how many appends preceded it — two ingest histories that
    /// produce the same blocks produce the same placements.
    ///
    /// # Panics
    /// Panics if `records` is empty (HDFS never seals an empty block).
    pub fn append_block_with<P: PlacementPolicy>(
        &mut self,
        records: Vec<Record>,
        policy: &P,
    ) -> BlockId {
        assert!(!records.is_empty(), "cannot append an empty block");
        let id = BlockId(self.blocks.len() as u32);
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id.0 as u64 + 1),
        );
        let locations = policy.place(id, &self.config.topology, self.config.replication, &mut rng);
        self.namenode.register(id, locations);
        self.blocks.push(Block::new(id, records));
        id
    }

    /// The configuration.
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    /// All sealed blocks, id order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// One block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// NameNode metadata.
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total payload bytes across all blocks.
    pub fn total_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.bytes()).sum()
    }

    /// Ground-truth bytes of sub-dataset `s` per block — the Figure 1(a)
    /// series. O(total records).
    pub fn subdataset_distribution(&self, s: SubDatasetId) -> Vec<u64> {
        self.blocks.iter().map(|b| b.subdataset_bytes(s)).collect()
    }

    /// Ground-truth total bytes of sub-dataset `s`.
    pub fn subdataset_total(&self, s: SubDatasetId) -> u64 {
        self.subdataset_distribution(s).iter().sum()
    }

    /// Nodes holding a replica of `b` (delegates to the NameNode).
    pub fn replicas(&self, b: BlockId) -> &[NodeId] {
        self.namenode.replicas(b)
    }

    /// Replicas of `b` on nodes still alive under `alive` (delegates to the
    /// NameNode).
    pub fn surviving_replicas(&self, b: BlockId, alive: &[bool]) -> Vec<NodeId> {
        self.namenode.surviving_replicas(b, alive)
    }

    /// Blocks with no surviving replica under `alive` (delegates to the
    /// NameNode).
    pub fn lost_blocks(&self, alive: &[bool]) -> Vec<BlockId> {
        self.namenode.lost_blocks(alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: usize, size: u32) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(SubDatasetId((i % 3) as u64), i as u64, size, i as u64))
            .collect()
    }

    fn tiny_config(block_size: u64) -> DfsConfig {
        DfsConfig {
            block_size,
            replication: 3,
            topology: Topology::single_rack(8),
            seed: 42,
        }
    }

    #[test]
    fn blocks_fill_to_capacity() {
        // 10 records of 100 B into 300 B blocks → 4 blocks (3+3+3+1).
        let dfs = Dfs::write_random(tiny_config(300), records(10, 100));
        assert_eq!(dfs.block_count(), 4);
        assert_eq!(dfs.blocks()[0].len(), 3);
        assert_eq!(dfs.blocks()[3].len(), 1);
        assert_eq!(dfs.total_bytes(), 1000);
    }

    #[test]
    fn oversized_record_gets_own_block() {
        let recs = vec![
            Record::new(SubDatasetId(0), 0, 50, 0),
            Record::new(SubDatasetId(0), 1, 500, 1), // bigger than capacity
            Record::new(SubDatasetId(0), 2, 50, 2),
        ];
        let dfs = Dfs::write_random(tiny_config(100), recs);
        assert_eq!(dfs.block_count(), 3);
        assert_eq!(dfs.blocks()[1].bytes(), 500);
    }

    #[test]
    fn every_block_is_replicated_and_registered() {
        let dfs = Dfs::write_random(tiny_config(250), records(40, 50));
        assert_eq!(dfs.namenode().block_count(), dfs.block_count());
        for b in dfs.blocks() {
            let reps = dfs.replicas(b.id());
            assert_eq!(reps.len(), 3);
            for &n in reps {
                assert!(dfs.namenode().is_local(b.id(), n));
            }
        }
    }

    #[test]
    fn distribution_sums_to_total() {
        let dfs = Dfs::write_random(tiny_config(300), records(30, 100));
        let s = SubDatasetId(1);
        let dist = dfs.subdataset_distribution(s);
        assert_eq!(dist.len(), dfs.block_count());
        assert_eq!(dist.iter().sum::<u64>(), dfs.subdataset_total(s));
        // 10 of the 30 records belong to sub-dataset 1.
        assert_eq!(dfs.subdataset_total(s), 1000);
    }

    #[test]
    fn write_is_deterministic() {
        let a = Dfs::write_random(tiny_config(300), records(30, 100));
        let b = Dfs::write_random(tiny_config(300), records(30, 100));
        assert_eq!(a.namenode(), b.namenode());
    }

    #[test]
    fn chronological_order_preserved_within_and_across_blocks() {
        let dfs = Dfs::write_random(tiny_config(300), records(30, 100));
        let mut last = 0;
        for b in dfs.blocks() {
            for r in b.records() {
                assert!(r.timestamp >= last);
                last = r.timestamp;
            }
        }
    }

    #[test]
    fn paper_config_values() {
        let c = DfsConfig::paper(128);
        assert_eq!(c.block_size, 64 * 1024 * 1024);
        assert_eq!(c.replication, 3);
        assert_eq!(c.topology.len(), 128);
        let s = DfsConfig::paper_scaled(32, 64);
        assert_eq!(s.block_size, 1024 * 1024);
    }

    #[test]
    fn empty_dataset_produces_no_blocks() {
        let dfs = Dfs::write_random(tiny_config(100), Vec::new());
        assert_eq!(dfs.block_count(), 0);
        assert_eq!(dfs.total_bytes(), 0);
    }

    #[test]
    fn append_block_registers_and_places() {
        let mut dfs = Dfs::empty(tiny_config(300));
        let a = dfs.append_block(records(3, 100));
        let b = dfs.append_block(records(2, 100));
        assert_eq!((a, b), (BlockId(0), BlockId(1)));
        assert_eq!(dfs.block_count(), 2);
        assert_eq!(dfs.namenode().block_count(), 2);
        for id in [a, b] {
            assert_eq!(dfs.replicas(id).len(), 3);
        }
        assert_eq!(dfs.total_bytes(), 500);
    }

    #[test]
    fn append_placement_is_history_independent() {
        // Block 1's replica locations are the same whether it arrives
        // second or tenth — the per-block rng stream depends only on
        // (config.seed, block id).
        let mut short = Dfs::empty(tiny_config(300));
        short.append_block(records(3, 100));
        short.append_block(records(2, 100));
        let mut long = Dfs::empty(tiny_config(300));
        for _ in 0..1 {
            long.append_block(records(3, 100));
        }
        long.append_block(records(2, 100));
        assert_eq!(short.replicas(BlockId(1)), long.replicas(BlockId(1)));
    }

    #[test]
    fn append_is_copy_on_write_for_namenode_clones() {
        let mut dfs = Dfs::empty(tiny_config(300));
        dfs.append_block(records(3, 100));
        let snapshot = dfs.namenode().clone();
        dfs.append_block(records(2, 100));
        assert_eq!(snapshot.block_count(), 1, "old handle keeps old snapshot");
        assert_eq!(dfs.namenode().block_count(), 2);
    }

    #[test]
    #[should_panic]
    fn append_empty_block_panics() {
        let mut dfs = Dfs::empty(tiny_config(300));
        dfs.append_block(Vec::new());
    }
}
