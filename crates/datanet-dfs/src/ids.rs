//! Strongly-typed identifiers shared by the whole workspace.
//!
//! Newtypes prevent the classic index-confusion bugs (passing a block index
//! where a node index is expected) at zero runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a sub-dataset (a movie, a GitHub event type, a user id…).
///
/// The paper's datasets contain "millions or billions" of sub-datasets, so
/// this is 64-bit.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SubDatasetId(pub u64);

/// Identifier of an HDFS block file.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockId(pub u32);

/// Identifier of a cluster (data/compute) node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl SubDatasetId {
    /// The raw id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl BlockId {
    /// The raw id, usable as a dense index (blocks are numbered 0..n).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The raw id, usable as a dense index (nodes are numbered 0..m).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SubDatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cn{}", self.0)
    }
}

impl From<u64> for SubDatasetId {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

impl From<u32> for BlockId {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_forms() {
        assert_eq!(SubDatasetId(7).to_string(), "s7");
        assert_eq!(BlockId(3).to_string(), "b3");
        assert_eq!(NodeId(0).to_string(), "cn0");
    }

    #[test]
    fn ids_hash_and_compare() {
        let mut set = HashSet::new();
        set.insert(SubDatasetId(1));
        set.insert(SubDatasetId(1));
        set.insert(SubDatasetId(2));
        assert_eq!(set.len(), 2);
        assert!(BlockId(1) < BlockId(2));
        assert_eq!(NodeId(5).index(), 5);
    }
}
