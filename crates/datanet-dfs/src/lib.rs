//! A simulated HDFS-like distributed file system — the storage substrate the
//! paper runs on.
//!
//! Reproduces the properties DataNet exploits and suffers from:
//!
//! * datasets are split into fixed-size **blocks** ([`block`]) in arrival
//!   order, so temporal content clustering maps directly onto block
//!   clustering;
//! * each block is **replicated** (3-way by default) and **placed** on data
//!   nodes by a content-oblivious policy ([`placement`]);
//! * the **NameNode** ([`namenode`]) records only `block → nodes` metadata —
//!   it knows nothing about which sub-datasets live inside a block, which is
//!   exactly the information gap ElasticMap fills.
//!
//! Records ([`record`]) carry a sub-dataset id, timestamp and byte size, plus
//! a deterministic seed from which textual payloads (words, ratings,
//! similarity sequences) are lazily generated — so analysis jobs can do real
//! computation without the store materialising gigabytes of text.

pub mod block;
pub mod dfs;
pub mod ids;
pub mod namenode;
pub mod placement;
pub mod record;
pub mod topology;

pub use block::{Block, BlockMeta};
pub use dfs::{Dfs, DfsConfig};
pub use ids::{BlockId, NodeId, SubDatasetId};
pub use namenode::NameNode;
pub use placement::{PlacementPolicy, RackAwarePlacement, RandomPlacement};
pub use record::{Payload, Record};
pub use topology::Topology;
