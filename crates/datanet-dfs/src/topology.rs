//! Cluster topology: nodes grouped into racks.
//!
//! The paper's Marmot testbed connects all 128 nodes to one switch; HDFS
//! placement is nonetheless rack-aware in general, so the topology keeps a
//! rack notion (with a single-rack default matching Marmot).

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Static description of the data-node fleet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    nodes: u32,
    rack_size: u32,
}

impl Topology {
    /// `nodes` data nodes in racks of `rack_size` (last rack may be short).
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(nodes: u32, rack_size: u32) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(rack_size > 0, "rack size must be positive");
        Self { nodes, rack_size }
    }

    /// All nodes on one rack (Marmot: everything behind a single switch).
    pub fn single_rack(nodes: u32) -> Self {
        Self::new(nodes, nodes)
    }

    /// Number of data nodes.
    pub fn len(&self) -> usize {
        self.nodes as usize
    }

    /// Always false (≥ 1 node by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }

    /// The rack a node lives on.
    pub fn rack_of(&self, n: NodeId) -> u32 {
        assert!(n.0 < self.nodes, "node {n} not in topology");
        n.0 / self.rack_size
    }

    /// Number of racks.
    pub fn racks(&self) -> u32 {
        self.nodes.div_ceil(self.rack_size)
    }

    /// Whether two nodes share a rack.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_assignment() {
        let t = Topology::new(10, 4);
        assert_eq!(t.racks(), 3);
        assert_eq!(t.rack_of(NodeId(0)), 0);
        assert_eq!(t.rack_of(NodeId(3)), 0);
        assert_eq!(t.rack_of(NodeId(4)), 1);
        assert_eq!(t.rack_of(NodeId(9)), 2);
        assert!(t.same_rack(NodeId(4), NodeId(7)));
        assert!(!t.same_rack(NodeId(3), NodeId(4)));
    }

    #[test]
    fn single_rack_groups_everyone() {
        let t = Topology::single_rack(128);
        assert_eq!(t.racks(), 1);
        assert!(t.same_rack(NodeId(0), NodeId(127)));
        assert_eq!(t.len(), 128);
        assert_eq!(t.nodes().count(), 128);
    }

    #[test]
    #[should_panic]
    fn rack_of_unknown_node_panics() {
        Topology::new(4, 2).rack_of(NodeId(4));
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        Topology::new(0, 1);
    }
}
