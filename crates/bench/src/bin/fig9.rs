//! Figure 9 — per-sub-dataset accuracy of the ElasticMap estimate.
//!
//! For movies ordered by (descending) size: the Equation 6 estimate vs the
//! actual size. Large sub-datasets are dominant in most blocks (recorded
//! exactly) so their estimates are tight; sub-datasets below the ~32 MB
//! analogue live mostly in bloom filters and deviate more — yet "as these
//! sub-datasets have little data, there will be a lower probability for
//! them to cause imbalanced computing".

use datanet::{ElasticMapArray, Separation};
use datanet_bench::{movie_dataset, quick, Table, NODES};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let ranked = catalog.by_size_desc();

    println!("== Figure 9: estimate vs actual per movie, ordered by size ==");
    println!("(top 30 movies, then every 50th rank into the long tail)");
    let mut t = Table::new(["rank", "movie", "actual kB", "estimated kB", "accuracy"]);
    let mut large_accs = Vec::new();
    let mut small_accs = Vec::new();
    let (top, tail_step) = if quick() { (10, 200) } else { (30, 50) };
    let sampled: Vec<usize> = (0..top)
        .chain((top..ranked.len()).step_by(tail_step))
        .collect();
    for rank in sampled {
        let (movie, actual) = ranked[rank];
        if actual == 0 {
            continue;
        }
        let view = arr.view(movie);
        let est = view.estimated_total();
        let acc = view.accuracy(&dfs).expect("movie exists");
        t.row([
            (rank + 1).to_string(),
            movie.to_string(),
            format!("{:.1}", actual as f64 / 1024.0),
            format!("{:.1}", est as f64 / 1024.0),
            format!("{:.1}%", acc * 100.0),
        ]);
        // Scaled analogue of the paper's 32 MB threshold: 32 MB / 256 = 128 kB.
        if actual >= 128 * 1024 {
            large_accs.push(acc);
        } else {
            small_accs.push(acc);
        }
    }
    t.print();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmean accuracy: movies >= 128 kB (paper's 32 MB analogue): {:.1}%  |  smaller movies: {:.1}%",
        mean(&large_accs) * 100.0,
        mean(&small_accs) * 100.0
    );
    println!("(the paper's trend: accuracy degrades below the size threshold)");
}
