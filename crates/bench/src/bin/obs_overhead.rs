//! Recorder overhead measurement: the observability plane must be close to
//! free, or nobody leaves it on.
//!
//! Runs the same end-to-end traced workload — ElasticMap build, faulty
//! selection under the EWMA detector, analysis job — twice per repetition:
//! once with `Recorder::off()` (every tracing call is a no-op) and once
//! with a live recorder. Wall time is taken as the *minimum* over the
//! repetitions, the standard way to strip scheduler noise from a
//! micro-measurement; the overhead fraction is `(on − off) / off`.
//!
//! `--json PATH` writes the measurement as `BENCH_obs.json`; the CI
//! trace-smoke job fails if the recorder costs more than 5% of the
//! untraced wall makespan.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use datanet::{ElasticMapArray, Separation};
use datanet_bench::{movie_dataset, quick, Table, NODES};
use datanet_cluster::{DetectorConfig, FaultPlan, SimTime};
use datanet_mapreduce::{
    run_analysis_traced, run_selection, run_selection_faulty_traced, AnalysisConfig,
    DataNetScheduler, FaultConfig, LocalityScheduler, SelectionConfig,
};
use datanet_obs::Recorder;
use serde::Serialize;

#[derive(Serialize)]
struct ObsOverheadReport {
    reps: usize,
    spans: usize,
    recorder_off_secs: f64,
    recorder_on_secs: f64,
    overhead_fraction: f64,
}

fn path_flag(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let sel = SelectionConfig::default();
    let ana = AnalysisConfig::default();
    let job = datanet_analytics::profiles::word_count_profile();

    let mut probe = LocalityScheduler::new(&dfs);
    let healthy_end = run_selection(&dfs, &truth, &mut probe, &sel).end;
    let horizon = SimTime::from_micros(healthy_end.as_micros().max(1));
    let plan = FaultPlan::random(NODES as usize, 0xFA01, 0.25, horizon);

    // The traced workload, exactly as a `--trace` user runs it.
    let workload = |rec: &Recorder| {
        let array = ElasticMapArray::build_traced(&dfs, &Separation::Alpha(0.3), rec);
        let view = array.view(hot);
        let faults = FaultConfig::with_detection(plan.clone(), DetectorConfig::default());
        let mut sched = DataNetScheduler::new(&dfs, &view);
        let out = run_selection_faulty_traced(&dfs, &truth, &mut sched, &sel, &faults, rec);
        run_analysis_traced(&out.per_node_bytes, &job, &ana, out.end, rec);
    };

    let reps = if quick() { 5 } else { 15 };
    let mut off_min = f64::INFINITY;
    let mut on_min = f64::INFINITY;
    let mut spans = 0usize;
    // Warm-up rep to fill caches, then interleave off/on so drift hits both.
    workload(&Recorder::off());
    for _ in 0..reps {
        let t = Instant::now();
        workload(&Recorder::off());
        off_min = off_min.min(t.elapsed().as_secs_f64());

        let rec = Recorder::new();
        let t = Instant::now();
        workload(&rec);
        on_min = on_min.min(t.elapsed().as_secs_f64());
        spans = rec.take().spans.len();
    }
    let overhead = ((on_min - off_min) / off_min).max(0.0);

    println!("== Observability-plane overhead ({reps} reps, min wall time) ==");
    let mut t = Table::new(["recorder", "wall (ms)", "spans"]);
    t.row(["off", &format!("{:.3}", off_min * 1e3), "0"]);
    t.row(["on", &format!("{:.3}", on_min * 1e3), &spans.to_string()]);
    t.print();
    println!(
        "overhead: {:.2}% of the untraced makespan",
        overhead * 100.0
    );

    if let Some(path) = path_flag("--json") {
        let report = ObsOverheadReport {
            reps,
            spans,
            recorder_off_secs: off_min,
            recorder_on_secs: on_min,
            overhead_fraction: overhead,
        };
        fs::write(&path, serde_json::to_vec_pretty(&report).unwrap()).unwrap();
        println!("wrote JSON report to {}", path.display());
    }
}
