//! Recorder overhead measurement: the observability plane must be close to
//! free, or nobody leaves it on.
//!
//! Runs the same end-to-end traced workload — ElasticMap build, faulty
//! selection under the EWMA detector, analysis job — three times per
//! repetition: with `Recorder::off()` (every call a no-op), with the
//! always-on **metrics** plane only (windowed aggregates, no trace
//! buffer), and with the full trace recorder. The three modes run
//! back-to-back inside each rep, so each rep yields a *paired* overhead
//! fraction `(mode − off) / off` under near-identical machine state;
//! the reported overhead is the median of those fractions, which host
//! throughput drift and scheduler outliers cannot skew the way a
//! min-per-mode comparison can.
//!
//! `--json PATH` writes the measurement as `BENCH_obs.json`; `--baseline
//! PATH` loads a committed `BENCH_obs_baseline.json` and gates: the
//! metrics plane may cost at most 2% of the untraced makespan (it is
//! meant to be always on) and the full trace at most 5%.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use datanet::{ElasticMapArray, Separation};
use datanet_bench::{movie_dataset, quick, Table, NODES};
use datanet_cluster::{DetectorConfig, FaultPlan, SimTime};
use datanet_mapreduce::{
    run_analysis_traced, run_selection, run_selection_faulty_traced, AnalysisConfig,
    DataNetScheduler, FaultConfig, LocalityScheduler, SelectionConfig,
};
use datanet_obs::{QueryCtx, Recorder};
use serde::{Deserialize, Serialize};

/// The always-on plane must stay under 2% to deserve the name.
const METRICS_OVERHEAD_CAP: f64 = 0.02;
/// The opt-in full trace may cost up to 5%.
const TRACE_OVERHEAD_CAP: f64 = 0.05;

#[derive(Serialize, Deserialize)]
struct ObsOverheadReport {
    reps: usize,
    spans: usize,
    /// Metric series produced by the metered run.
    series: usize,
    recorder_off_secs: f64,
    /// Metrics plane only (`Recorder::off().with_metrics(...)`, scoped).
    metrics_on_secs: f64,
    recorder_on_secs: f64,
    /// `(metrics_on − off) / off`.
    metrics_overhead_fraction: f64,
    /// `(trace_on − off) / off`.
    overhead_fraction: f64,
}

impl ObsOverheadReport {
    /// Gate this measurement: hard caps on both planes, plus the baseline
    /// echoed for drift visibility. Returns human-readable violations.
    fn gate_against(&self, base: &ObsOverheadReport) -> Vec<String> {
        let mut v = Vec::new();
        if self.metrics_overhead_fraction > METRICS_OVERHEAD_CAP {
            v.push(format!(
                "always-on metrics overhead {:.2}% exceeds the {:.0}% cap \
                 (baseline measured {:.2}%)",
                self.metrics_overhead_fraction * 100.0,
                METRICS_OVERHEAD_CAP * 100.0,
                base.metrics_overhead_fraction * 100.0
            ));
        }
        if self.overhead_fraction > TRACE_OVERHEAD_CAP {
            v.push(format!(
                "trace overhead {:.2}% exceeds the {:.0}% cap (baseline measured {:.2}%)",
                self.overhead_fraction * 100.0,
                TRACE_OVERHEAD_CAP * 100.0,
                base.overhead_fraction * 100.0
            ));
        }
        v
    }
}

fn path_flag(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn main() -> ExitCode {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let sel = SelectionConfig::default();
    let ana = AnalysisConfig::default();
    let job = datanet_analytics::profiles::word_count_profile();

    let mut probe = LocalityScheduler::new(&dfs);
    let healthy_end = run_selection(&dfs, &truth, &mut probe, &sel).end;
    let horizon = SimTime::from_micros(healthy_end.as_micros().max(1));
    let plan = FaultPlan::random(NODES as usize, 0xFA01, 0.25, horizon);

    // The instrumented workload, exactly as a `--trace`/`--metrics` user
    // runs it.
    let workload = |rec: &Recorder| {
        let array = ElasticMapArray::build_traced(&dfs, &Separation::Alpha(0.3), rec);
        let view = array.view(hot);
        let faults = FaultConfig::with_detection(plan.clone(), DetectorConfig::default());
        let mut sched = DataNetScheduler::new(&dfs, &view);
        let out = run_selection_faulty_traced(&dfs, &truth, &mut sched, &sel, &faults, rec);
        run_analysis_traced(&out.per_node_bytes, &job, &ana, out.end, rec);
    };

    // A single workload is ~3 ms of wall time — scheduler noise is a
    // meaningful fraction of a 2% cap at that scale, and host throughput
    // drifts on the timescale of a full measurement, so mins taken at
    // different moments do not cancel. Each rep therefore runs the three
    // modes back-to-back (machine state is near-constant across the
    // ~10 ms rep), and the reported overhead is the *median over reps of
    // the per-rep fraction* — a paired, outlier-robust estimator. Many
    // short reps beat few long ones here: a rep hit by a neighbour burst
    // contributes one outlier fraction the median discards, where a long
    // rep would smear the burst into every sample.
    let reps = if quick() { 20 } else { 120 };
    let run_measurement = || {
        let mut off_s = Vec::with_capacity(reps);
        let mut met_s = Vec::with_capacity(reps);
        let mut on_s = Vec::with_capacity(reps);
        let mut spans = 0usize;
        let mut series = 0usize;
        // The always-on configuration: windowed metrics, query-scoped, no
        // trace buffer. The registry is attached once per *process* and
        // serves every query of its lifetime, so it persists across reps:
        // the estimator below measures the steady-state per-event cost
        // the cap governs, while first-sight series resolution (a few
        // hundred canonical keys, paid once per process) lands in the
        // first reps and is absorbed by the block medians like any other
        // cold-cache effect.
        let met = Recorder::off()
            .with_metrics(1_000_000)
            .scoped(QueryCtx::new(1).tenant("bench"));
        // Warm-up rep to fill caches, then interleave the modes so drift
        // hits all three equally.
        workload(&Recorder::off());
        for _ in 0..reps {
            let t = Instant::now();
            workload(&Recorder::off());
            off_s.push(t.elapsed().as_secs_f64());

            let t = Instant::now();
            workload(&met);
            met_s.push(t.elapsed().as_secs_f64());
            let snap = met.metrics_snapshot().expect("metrics attached");
            series = snap.counters.len() + snap.hists.len() + snap.gauges.len();

            // The trace buffer is per-run state, so every pass records
            // into a fresh recorder; buffer setup and teardown stay
            // outside the timed region (both modes are measured on
            // recording cost alone).
            let rec = Recorder::new();
            let t = Instant::now();
            workload(&rec);
            on_s.push(t.elapsed().as_secs_f64());
            spans = rec.take().spans.len();
        }
        fn median(mut v: Vec<f64>) -> f64 {
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            v[v.len() / 2]
        }
        // Noise on a shared host only ever *adds* time, and it arrives
        // in bursts (CPU steal, neighbour activity) riding on epochs
        // that can outlast a whole run — a run-wide median is biased
        // upward for the duration. Two block-local estimators cope with
        // different noise shapes: the median of the per-rep paired
        // fractions absorbs isolated bursts, and the lower-quartile
        // comparison recovers the clean samples both modes still
        // produce inside a bursty epoch (duty cycles are rarely 100%).
        // Noise can only ever inflate overhead, never mask it, so the
        // min across blocks and estimators tracks the true steady-state
        // cost — the quantity the cap is about.
        fn block_min_overhead(mode: &[f64], off: &[f64]) -> f64 {
            const BLOCKS: usize = 4;
            fn quartile(v: &[f64]) -> f64 {
                let mut v = v.to_vec();
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
                v[v.len() / 4]
            }
            let n = (mode.len() / BLOCKS.min(mode.len())).max(1);
            mode.chunks(n)
                .zip(off.chunks(n))
                .map(|(m, o)| {
                    let fracs: Vec<f64> = m.iter().zip(o).map(|(m, o)| (m - o) / o).collect();
                    let paired = median(fracs);
                    let q = (quartile(m) - quartile(o)) / quartile(o);
                    paired.min(q)
                })
                .fold(f64::INFINITY, f64::min)
        }
        let off_med = median(off_s.clone());
        let met_med = median(met_s.clone());
        let on_med = median(on_s.clone());
        let met_overhead = block_min_overhead(&met_s, &off_s).max(0.0);
        let overhead = block_min_overhead(&on_s, &off_s).max(0.0);

        println!("== Observability-plane overhead ({reps} paired reps, block medians) ==");
        let mut t = Table::new(["recorder", "wall (ms)", "spans", "series"]);
        t.row(["off", &format!("{:.3}", off_med * 1e3), "0", "0"]);
        t.row([
            "metrics",
            &format!("{:.3}", met_med * 1e3),
            "0",
            &series.to_string(),
        ]);
        t.row([
            "trace",
            &format!("{:.3}", on_med * 1e3),
            &spans.to_string(),
            "0",
        ]);
        t.print();
        println!(
            "metrics overhead: {:.2}%, trace overhead: {:.2}% of the untraced makespan",
            met_overhead * 100.0,
            overhead * 100.0
        );

        ObsOverheadReport {
            reps,
            spans,
            series,
            recorder_off_secs: off_med,
            metrics_on_secs: met_med,
            recorder_on_secs: on_med,
            metrics_overhead_fraction: met_overhead,
            overhead_fraction: overhead,
        }
    };
    let report = run_measurement();
    if let Some(path) = path_flag("--json") {
        fs::write(&path, serde_json::to_vec_pretty(&report).unwrap()).unwrap();
        println!("wrote JSON report to {}", path.display());
    }
    if let Some(path) = path_flag("--baseline") {
        let raw = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
        let base: ObsOverheadReport = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("{} is not an obs report: {e}", path.display()));
        // Noise can only inflate a measurement, never hide real
        // overhead, so a failed attempt on a shared host is re-measured
        // before the gate rules: a genuine regression fails all
        // attempts, a noise spike rarely survives one.
        const GATE_ATTEMPTS: usize = 3;
        let mut attempt_report = report;
        for attempt in 1..=GATE_ATTEMPTS {
            let violations = attempt_report.gate_against(&base);
            if violations.is_empty() {
                println!(
                    "obs gate: PASS against {} (metrics ≤ {:.0}%, trace ≤ {:.0}%)",
                    path.display(),
                    METRICS_OVERHEAD_CAP * 100.0,
                    TRACE_OVERHEAD_CAP * 100.0
                );
                return ExitCode::SUCCESS;
            }
            for v in &violations {
                println!("obs gate: {v}");
            }
            if attempt == GATE_ATTEMPTS {
                println!("obs gate: FAIL after {GATE_ATTEMPTS} attempts");
                return ExitCode::FAILURE;
            }
            println!("obs gate: attempt {attempt}/{GATE_ATTEMPTS} over cap; re-measuring");
            attempt_report = run_measurement();
        }
    }
    ExitCode::SUCCESS
}
