//! Section V-A-4 — the dynamic-migration (SkewTune-like) alternative.
//!
//! "With the example without DataNet in Figure 5(c), we find that almost
//! every cluster node will transfer or receive sub-datasets and the overall
//! percentage of data migration is more than 30%."
//!
//! This binary rebalances the locality scheduler's skewed partitions by
//! migration, reports the migrated fraction and time, and compares the
//! end-to-end path against DataNet's proactive balancing.

use datanet::{ElasticMapArray, Separation};
use datanet_analytics::profiles::word_count_profile;
use datanet_bench::{movie_dataset, Table, NODES};
use datanet_cluster::NodeSpec;
use datanet_mapreduce::{
    rebalance, run_analysis, run_selection, AnalysisConfig, DataNetScheduler, LocalityScheduler,
    SelectionConfig,
};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let sel = SelectionConfig::default();
    let ana = AnalysisConfig::default();

    let mut base = LocalityScheduler::new(&dfs);
    let without = run_selection(&dfs, &truth, &mut base, &sel);
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let mut dn = DataNetScheduler::new(&dfs, &view);
    let with = run_selection(&dfs, &truth, &mut dn, &sel);

    let mig = rebalance(&without.per_node_bytes, &NodeSpec::marmot());
    println!("== Dynamic migration after an imbalanced selection ==");
    println!(
        "migrated bytes: {} of {} ({:.1}%), touching {} of {NODES} nodes",
        mig.moved_bytes,
        without.per_node_bytes.iter().sum::<u64>(),
        mig.fraction * 100.0,
        mig.nodes_touched,
    );
    println!("migration wall time: {:.3}s", mig.migration_secs);
    println!("(paper: \"more than 30%\" of the data migrates, touching almost every node)\n");

    // End-to-end WordCount comparison across the three strategies.
    let job = word_count_profile();
    let j_without = run_analysis(&without.per_node_bytes, &job, &ana);
    let j_migrated = run_analysis(&mig.balanced, &job, &ana);
    let j_with = run_analysis(&with.per_node_bytes, &job, &ana);

    let mut t = Table::new([
        "strategy",
        "selection (s)",
        "extra (s)",
        "job (s)",
        "total (s)",
    ]);
    let rows = [
        (
            "locality (no fix)",
            without.end.as_secs_f64(),
            0.0,
            j_without.makespan_secs,
        ),
        (
            "locality + migration",
            without.end.as_secs_f64(),
            mig.migration_secs,
            j_migrated.makespan_secs,
        ),
        (
            "DataNet (proactive)",
            with.end.as_secs_f64(),
            0.0,
            j_with.makespan_secs,
        ),
    ];
    for (name, sel_s, extra, job_s) in rows {
        t.row([
            name.to_string(),
            format!("{sel_s:.3}"),
            format!("{extra:.3}"),
            format!("{job_s:.3}"),
            format!("{:.3}", sel_s + extra + job_s),
        ]);
    }
    t.print();
    println!(
        "\nDataNet foresees the imbalance and avoids both the migration traffic\n\
         and the runtime monitoring the reactive approach needs."
    );
}
