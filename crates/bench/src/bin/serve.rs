//! Serving-plane trajectory: measures p50/p99 latency and decision
//! throughput of `datanet-serve` at 1/8/64 concurrent tenants with the
//! epoch-keyed plan cache on and off, and gates the cache speedup and the
//! simulated outcome against the committed baseline (see
//! `datanet_bench::serve` for the methodology).
//!
//! ```text
//! serve [--quick] [--json BENCH_serve.json] [--baseline BENCH_serve_baseline.json]
//! ```
//!
//! `--json` writes the measurement; `--baseline` compares it against a
//! committed `BENCH_serve_baseline.json` and exits non-zero when the
//! cache-on decision throughput falls under 2x cache-off at the 64-tenant
//! point, when caching changes any simulated outcome, or when the
//! deterministic simulated numbers drift from the baseline — the CI
//! `serve-gate` job is exactly this invocation.

use datanet_bench::{quick, run_serve_bench, ServeBenchReport};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn path_flag(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn main() -> ExitCode {
    let report = run_serve_bench(quick());
    report.print();

    if let Some(path) = path_flag("--json") {
        fs::write(&path, serde_json::to_vec_pretty(&report).unwrap()).unwrap();
        println!("wrote JSON report to {}", path.display());
    }

    if let Some(path) = path_flag("--baseline") {
        let raw = match fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline: ServeBenchReport = match serde_json::from_str(&raw) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot parse baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let violations = report.gate_against(&baseline);
        if violations.is_empty() {
            println!("serve gate: PASS against {}", path.display());
        } else {
            eprintln!("serve gate: FAIL against {}", path.display());
            for v in &violations {
                eprintln!("  - {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
