//! Speculative execution vs data skew — why Hadoop's built-in straggler
//! mitigation does not solve the paper's problem.
//!
//! Two scenarios over the movie workload's filtered partitions:
//! * **data skew** (the content-clustering case): backups are launched but
//!   cannot beat the originals — improvement ≈ 0, work duplicated;
//! * **slow node** (what speculation was designed for): a degraded node's
//!   balanced partition is rescued.

use datanet_bench::{movie_dataset, Table, NODES};
use datanet_cluster::NodeSpec;
use datanet_mapreduce::{
    run_selection, speculative_map_phase, speculative_map_phase_with_slowdowns, LocalityScheduler,
    SelectionConfig, SpeculationConfig,
};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let mut base = LocalityScheduler::new(&dfs);
    let selection = run_selection(&dfs, &truth, &mut base, &SelectionConfig::default());
    let job = datanet_analytics::profiles::top_k_profile();
    let cfg = SpeculationConfig::default();
    let spec = NodeSpec::marmot();

    println!("== Speculative execution vs the two kinds of straggler ==");
    let mut t = Table::new([
        "scenario",
        "backups",
        "duplicated kB",
        "map makespan (s)",
        "vs no speculation",
    ]);

    // Data-skew stragglers: the locality selection's imbalanced partitions.
    let skew = speculative_map_phase(&selection.per_node_bytes, &job, &spec, &cfg);
    t.row([
        "data skew (clustering)".to_string(),
        skew.backups.to_string(),
        format!("{:.0}", skew.duplicated_bytes as f64 / 1024.0),
        format!("{:.4}", skew.makespan_secs),
        format!("{:.1}%", skew.improvement() * 100.0),
    ]);

    // Slow-node straggler: balanced partitions, one node 4x degraded.
    let total: u64 = selection.per_node_bytes.iter().sum();
    let balanced = vec![total / NODES as u64; NODES as usize];
    let mut slowdowns = vec![1.0; NODES as usize];
    slowdowns[7] = 4.0;
    let slow = speculative_map_phase_with_slowdowns(&balanced, &job, &spec, &cfg, &slowdowns);
    t.row([
        "slow node (4x degraded)".to_string(),
        slow.backups.to_string(),
        format!("{:.0}", slow.duplicated_bytes as f64 / 1024.0),
        format!("{:.4}", slow.makespan_secs),
        format!("{:.1}%", slow.improvement() * 100.0),
    ]);
    t.print();

    println!(
        "\nspeculation rescues machine-level stragglers but not content-clustering\n\
         skew: a backup of the same oversized partition, launched later and fed\n\
         over the network, cannot beat the original. DataNet prevents the skew\n\
         instead of racing it."
    );
}
