//! Table II — efficiency of the ElasticMap: the α ↔ accuracy ↔
//! representation-ratio trade-off, measured on real structures and on the
//! Equation 5 model.
//!
//! Paper row set: α ∈ {51, 40, 31, 25, 21}% → accuracy {97, 93, 88, 83,
//! 80}% and raw:meta ratios {1857 … 3497}. Ratios depend on the
//! records-per-block scale (the paper's 64 MB blocks hold 256× more
//! records than our scaled 256 kB blocks), so we print both the measured
//! scaled ratio and the Equation 5 model evaluated at the paper's block
//! size.

use datanet::{ElasticMapArray, MemoryModel, Separation};
use datanet_bench::{movie_dataset, Table, NODES};

fn main() {
    let (dfs, _) = movie_dataset(NODES);
    let model = MemoryModel::default();

    println!("== Table II: efficiency of ElasticMap ==");
    let mut t = Table::new([
        "alpha(req)",
        "alpha(achieved)",
        "accuracy chi",
        "ratio (measured, scaled)",
        "ratio (Eq.5 model @64MB)",
    ]);
    for &alpha in &[0.51, 0.40, 0.31, 0.25, 0.21] {
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(alpha));
        let achieved: f64 =
            arr.maps().iter().map(|m| m.achieved_alpha()).sum::<f64>() / arr.len() as f64;
        let chi = arr.accuracy(&dfs);
        let measured = arr.representation_ratio(&dfs);
        // Equation 5 model at paper scale: 64 MB block; sub-dataset count
        // per block scaled up by the same 256× as the data volume.
        let mean_distinct: f64 =
            arr.maps().iter().map(|m| m.distinct() as f64).sum::<f64>() / arr.len() as f64;
        let model_ratio =
            model.representation_ratio(64 * 1024 * 1024, (mean_distinct * 256.0) as usize, alpha);
        t.row([
            format!("{:.0}%", alpha * 100.0),
            format!("{:.0}%", achieved * 100.0),
            format!("{:.1}%", chi * 100.0),
            format!("{measured:.0}"),
            format!("{model_ratio:.0}"),
        ]);
    }
    t.print();
    println!(
        "\ntrends to compare with the paper: accuracy falls and the\n\
         representation ratio rises as alpha decreases."
    );
}
