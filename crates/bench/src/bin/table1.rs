//! Table I — "The size information of movies within a block file": the
//! per-sub-dataset sizes an ElasticMap records for one block, largest
//! first.

use datanet::{ElasticMap, Separation};
use datanet_bench::{movie_dataset, Table, NODES};

fn main() {
    let (dfs, _) = movie_dataset(NODES);
    let block = dfs.block(datanet_dfs::BlockId(0));
    let map = ElasticMap::build(block, &Separation::All);

    println!("== Table I: movie sizes within block b0 ==");
    let mut entries: Vec<_> = map.exact_entries().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut t = Table::new(["movie id", "bytes", "# reviews (approx)"]);
    for (id, bytes) in entries.iter().take(15) {
        t.row([
            id.to_string(),
            bytes.to_string(),
            format!("{}", bytes / 600),
        ]);
    }
    t.print();
    println!(
        "... {} distinct movies in this one {} kB block",
        map.distinct(),
        block.bytes() / 1024
    );
}
