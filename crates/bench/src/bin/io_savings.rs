//! I/O savings from block skipping — Section V-B-1: "with the knowledge of
//! ElasticMap, we can reduce the I/O cost, since we don't need to process
//! blocks that don't contain our target data (no records in the hash map
//! and bloom filter)."
//!
//! The saving grows as the target sub-dataset shrinks: a blockbuster touches
//! every block, a niche movie only a handful.

use datanet::{ElasticMapArray, Separation};
use datanet_bench::{movie_dataset, Table, NODES};
use datanet_mapreduce::{run_selection, DataNetScheduler, LocalityScheduler, SelectionConfig};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let maps = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let ranked = catalog.by_size_desc();
    let sel = SelectionConfig::default();
    let total_blocks = dfs.block_count();

    println!("== I/O savings from ElasticMap block skipping ==");
    let mut t = Table::new([
        "movie rank",
        "movie size kB",
        "blocks read (locality)",
        "blocks read (DataNet)",
        "bytes saved",
    ]);
    for rank in [0usize, 4, 19, 99, 499, 1999] {
        let Some(&(movie, size)) = ranked.get(rank) else {
            continue;
        };
        if size == 0 {
            continue;
        }
        let truth = dfs.subdataset_distribution(movie);
        let mut base = LocalityScheduler::new(&dfs);
        let without = run_selection(&dfs, &truth, &mut base, &sel);
        let mut dn = DataNetScheduler::new(&dfs, &maps.view(movie));
        let with = run_selection(&dfs, &truth, &mut dn, &sel);
        assert_eq!(without.total_tasks, total_blocks);
        t.row([
            format!("#{}", rank + 1),
            format!("{:.1}", size as f64 / 1024.0),
            without.total_tasks.to_string(),
            with.total_tasks.to_string(),
            format!(
                "{:.1} MB ({:.0}%)",
                (without.bytes_read - with.bytes_read) as f64 / 1_048_576.0,
                100.0 * (1.0 - with.bytes_read as f64 / without.bytes_read as f64)
            ),
        ]);
    }
    t.print();
    println!(
        "\nthe oblivious scheduler must scan all {total_blocks} blocks for every\n\
         query; ElasticMap restricts the scan to blocks that (may) hold the\n\
         target — bloom false positives cost at most a handful of extra reads."
    );
}
