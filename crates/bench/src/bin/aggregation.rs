//! Aggregation-traffic extension (the future work of Section IV-B, built):
//! with the sub-dataset distribution known, reducer *placement* and
//! partition *shares* can be chosen to minimise shuffle traffic.
//!
//! Compares, for WordCount over the hot movie:
//! * Hadoop default — one reducer per node, uniform hash shares;
//! * placement only — R reducers on the data-richest nodes, uniform shares;
//! * placement + weighted shares (bounded reduce-side skew).

use datanet::{plan_aggregation, AggregationPlan, ElasticMapArray, Separation};
use datanet_analytics::profiles::word_count_profile;
use datanet_bench::{movie_dataset, Table, NODES};
use datanet_dfs::NodeId;
use datanet_mapreduce::{
    run_analysis_aggregated, run_selection, AnalysisConfig, LocalityScheduler, SelectionConfig,
};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    // Use the *imbalanced* locality selection: aggregation planning pays
    // off exactly when intermediate data is concentrated on a few nodes
    // (after DataNet's balanced selection there is little to win — both
    // plans are evaluated in `tests/` for that case).
    let _ = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let mut base = LocalityScheduler::new(&dfs);
    let selection = run_selection(&dfs, &truth, &mut base, &SelectionConfig::default());
    let job = word_count_profile();
    let cfg = AnalysisConfig::default();
    let outputs: Vec<u64> = selection
        .per_node_bytes
        .iter()
        .map(|&b| job.map_output_bytes(b))
        .collect();

    let reducers = 8usize;
    let default_plan = AggregationPlan {
        reducers: (0..NODES).map(NodeId).collect(),
        shares: vec![1.0 / NODES as f64; NODES as usize],
        est_traffic: 0,
    };
    let placed = plan_aggregation(&outputs, reducers, 1.0);
    let weighted = plan_aggregation(&outputs, reducers, 2.0);

    println!("== Aggregation planning: shuffle traffic and job time ==");
    let mut t = Table::new([
        "strategy",
        "reducers",
        "shuffle kB",
        "shuffle max (s)",
        "job makespan (s)",
    ]);
    for (name, plan) in [
        ("hadoop default (uniform)", &default_plan),
        ("placement only", &placed),
        ("placement + weighted shares", &weighted),
    ] {
        let rep = run_analysis_aggregated(&selection.per_node_bytes, &job, &cfg, plan);
        t.row([
            name.to_string(),
            plan.reducers.len().to_string(),
            format!("{:.1}", rep.shuffle_bytes as f64 / 1024.0),
            format!("{:.4}", rep.shuffle_summary().max()),
            format!("{:.4}", rep.makespan_secs),
        ]);
    }
    t.print();
    println!(
        "\nreduce-side skew accepted by the weighted plan: {:.2}x uniform",
        weighted.reduce_imbalance()
    );
}
