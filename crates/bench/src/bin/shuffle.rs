//! Distribution-aware shuffle trajectory: measures the network-byte
//! reduction of the reduce-side partitioner over hash partitioning across
//! a Zipf skew sweep and gates it against the committed baseline (see
//! `datanet_bench::shuffle` for the methodology).
//!
//! ```text
//! shuffle [--quick] [--json BENCH_shuffle.json] [--baseline BENCH_shuffle_baseline.json]
//! ```
//!
//! `--json` writes the measurement; `--baseline` compares the measured
//! reduction ratio at the skewed point against a committed
//! `BENCH_shuffle_baseline.json` and exits non-zero when the ratio leaves
//! the ±20% band, misses the 2x absolute floor, or the aware plan's
//! makespan regresses on the uniform workload — the CI `shuffle-gate` job
//! is exactly this invocation.

use datanet_bench::{quick, run_shuffle_bench, ShuffleBenchReport};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn path_flag(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn main() -> ExitCode {
    let report = run_shuffle_bench(quick());
    report.print();

    if let Some(path) = path_flag("--json") {
        fs::write(&path, serde_json::to_vec_pretty(&report).unwrap()).unwrap();
        println!("wrote JSON report to {}", path.display());
    }

    if let Some(path) = path_flag("--baseline") {
        let raw = match fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline: ShuffleBenchReport = match serde_json::from_str(&raw) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot parse baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let violations = report.gate_against(&baseline);
        if violations.is_empty() {
            println!("shuffle gate: PASS against {}", path.display());
        } else {
            eprintln!("shuffle gate: FAIL against {}", path.display());
            for v in &violations {
                eprintln!("  - {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
