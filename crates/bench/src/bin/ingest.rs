//! Streaming-ingest trajectory: measures the incremental-maintenance
//! speedup over rebuild-per-commit and gates it against the committed
//! baseline (see `datanet_bench::ingest` for the methodology).
//!
//! ```text
//! ingest [--quick] [--json BENCH_ingest.json] [--baseline BENCH_ingest_baseline.json]
//! ```
//!
//! `--json` writes the measurement; `--baseline` compares the measured
//! speedup ratio against a committed `BENCH_ingest_baseline.json` and
//! exits non-zero on a >20% regression or a missed absolute floor — the
//! CI `ingest-gate` job is exactly this invocation.

use datanet_bench::{quick, run_ingest_bench, IngestBenchReport};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn path_flag(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn main() -> ExitCode {
    let report = run_ingest_bench(quick());
    report.print();

    if let Some(path) = path_flag("--json") {
        fs::write(&path, serde_json::to_vec_pretty(&report).unwrap()).unwrap();
        println!("wrote JSON report to {}", path.display());
    }

    if let Some(path) = path_flag("--baseline") {
        let raw = match fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline: IngestBenchReport = match serde_json::from_str(&raw) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot parse baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let violations = report.gate_against(&baseline);
        if violations.is_empty() {
            println!("ingest gate: PASS against {}", path.display());
        } else {
            eprintln!("ingest gate: FAIL against {}", path.display());
            for v in &violations {
                eprintln!("  - {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
