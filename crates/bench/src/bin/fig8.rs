//! Figure 8 — the GitHub event-log experiment (Section V-A-4).
//!
//! (a) `IssueEvent` distribution over the first 128 blocks: imbalanced but
//!     *not* content-clustered.
//! (b) Per-node workload under locality scheduling.
//!
//! Plus the paper's headline numbers for this dataset: the longest Top-K
//! map time drops from 125 s to 107 s (a much smaller win than on the movie
//! data, because the distribution is less skewed).

use datanet::{ElasticMapArray, Separation};
use datanet_analytics::profiles::top_k_profile;
use datanet_bench::{github_dataset, quick, Table, NODES};
use datanet_mapreduce::{
    run_analysis, run_selection, AnalysisConfig, DataNetScheduler, LocalityScheduler,
    SelectionConfig,
};
use datanet_workloads::EventType;

fn main() {
    let dfs = github_dataset(NODES);
    let issue = EventType::Issue.id();
    let truth = dfs.subdataset_distribution(issue);

    let shown = if quick() { 32 } else { 128 };
    println!("== Figure 8(a): IssueEvent bytes over the first {shown} blocks (kB) ==");
    let mut t = Table::new(["block", "kB"]);
    for (i, b) in truth.iter().take(shown).enumerate() {
        t.row([i.to_string(), format!("{:.1}", *b as f64 / 1024.0)]);
    }
    t.print();
    let nonzero = truth.iter().filter(|&&b| b > 0).count();
    println!(
        "present in {nonzero}/{} blocks (no content clustering, but imbalanced)\n",
        truth.len()
    );

    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(issue);
    let sel = SelectionConfig::default();
    let mut base = LocalityScheduler::new(&dfs);
    let without = run_selection(&dfs, &truth, &mut base, &sel);
    let mut dn = DataNetScheduler::new(&dfs, &view);
    let with = run_selection(&dfs, &truth, &mut dn, &sel);

    println!("== Figure 8(b): IssueEvent workload per node (kB) ==");
    let mut t = Table::new(["node", "without DataNet", "with DataNet"]);
    for n in 0..NODES as usize {
        t.row([
            n.to_string(),
            format!("{:.1}", without.per_node_bytes[n] as f64 / 1024.0),
            format!("{:.1}", with.per_node_bytes[n] as f64 / 1024.0),
        ]);
    }
    t.print();

    let ana = AnalysisConfig::default();
    let tw = run_analysis(&without.per_node_bytes, &top_k_profile(), &ana);
    let td = run_analysis(&with.per_node_bytes, &top_k_profile(), &ana);
    println!(
        "\nTop-K Search longest map: without = {:.3}s, with = {:.3}s ({:.1}% better)",
        tw.map_summary().max(),
        td.map_summary().max(),
        100.0 * (1.0 - td.map_summary().max() / tw.map_summary().max())
    );
    println!(
        "(paper: 125s -> 107s, i.e. 14.4% — \"the overall improvement is much\n\
         less than that of the movie dataset\" because IssueEvent is far less\n\
         clustered; imbalance comes only from mix drift)"
    );
}
