//! Fault-injection sweep: how gracefully each scheduler degrades as nodes
//! crash mid-selection, and how the metadata plane degrades as ElasticMap
//! shards are corrupted or lost.
//!
//! **Crash sweep.** For each failure rate, random fault plans (node 0
//! always survives) are injected into the selection phase under the
//! locality baseline, DataNet with oracle crash notification, and DataNet
//! with the EWMA failure detector. Reported per rate, averaged over seeds:
//!
//! * bytes recovered (credited / sub-dataset total — < 100% only when every
//!   replica of some block died or the retry budget ran out);
//! * post-failure workload imbalance across the *survivors*;
//! * phase end, recovery time (first crash → completion) and mean
//!   crash→suspicion detection latency (detector rows only);
//! * re-executed tasks and wasted re-read bytes.
//!
//! **Corruption sweep.** For each corruption rate, a fraction of shards is
//! damaged in a freshly persisted 2-replica store: some lose only their
//! primary copy (scrub repairs them), some lose every full copy but keep
//! summaries (rung 2), and some lose everything (rung 3, quarantined). The
//! run then selects through `run_selection_resilient` and reports the
//! degradation-ladder rung mix, the Equation 6 estimate error and the bytes
//! recovered.
//!
//! `--json PATH` additionally writes both sweeps as a JSON report (the CI
//! degraded-mode smoke job uploads this as an artifact). `--trace PATH`
//! re-runs one representative detector run (highest crash rate, seed 0)
//! with the observability recorder attached, writes the Chrome trace for
//! Perfetto, and embeds the condensed `ObsSummary` in the JSON report (the
//! CI trace-smoke job gates on both).

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use datanet::store::MetaStore;
use datanet::{ElasticMapArray, Separation};
use datanet_bench::{movie_dataset, quick, Table, NODES};
use datanet_cluster::{DetectorConfig, FaultPlan, SimTime};
use datanet_mapreduce::{
    run_selection, run_selection_faulty, run_selection_faulty_traced, run_selection_resilient,
    DataNetScheduler, FaultConfig, LocalityScheduler, MapScheduler, SelectionConfig,
    SelectionOutcome,
};
use datanet_obs::{ObsSummary, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Serialize, Value};

const SHARD_BLOCKS: usize = 4;

fn survivor_imbalance(out: &SelectionOutcome) -> f64 {
    let survivors: Vec<f64> = out
        .per_node_bytes
        .iter()
        .enumerate()
        .filter(|(n, _)| !out.faults.crashed_nodes.contains(n))
        .map(|(_, &b)| b as f64)
        .collect();
    let mean = survivors.iter().sum::<f64>() / survivors.len() as f64;
    if mean == 0.0 {
        return 1.0;
    }
    survivors.iter().cloned().fold(0.0, f64::max) / mean
}

#[derive(Default, Serialize)]
struct CrashRow {
    rate: f64,
    scheduler: String,
    recovered: f64,
    survivor_imbalance: f64,
    phase_secs: f64,
    recovery_secs: f64,
    detection_secs: f64,
    reexecuted: f64,
    wasted_mb: f64,
}

#[derive(Default, Serialize)]
struct CorruptionRow {
    rate: f64,
    shards: usize,
    repaired: f64,
    quarantined: f64,
    rung_exact: f64,
    rung_bloom: f64,
    rung_fallback: f64,
    est_error: f64,
    recovered: f64,
    phase_secs: f64,
}

struct FaultsReport {
    nodes: u32,
    seeds: u64,
    crash_sweep: Vec<CrashRow>,
    corruption_sweep: Vec<CorruptionRow>,
    obs: Option<ObsSummary>,
}

// Hand-written so `obs: None` is omitted entirely: without `--trace` the
// JSON report must stay byte-identical to what pre-observability CI
// archived (the vendored serde derive would emit `"obs":null`).
impl Serialize for FaultsReport {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("nodes".to_string(), self.nodes.to_value()),
            ("seeds".to_string(), self.seeds.to_value()),
            ("crash_sweep".to_string(), self.crash_sweep.to_value()),
            (
                "corruption_sweep".to_string(),
                self.corruption_sweep.to_value(),
            ),
        ];
        if let Some(obs) = &self.obs {
            entries.push(("obs".to_string(), obs.to_value()));
        }
        Value::Object(entries)
    }
}

/// Value of `--<flag> PATH`, if given.
fn path_flag(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Damage `count` shards of a freshly saved 2-replica store. Fate cycles
/// deterministically: primary-copy corruption (repairable), all-replica
/// full-copy loss (rung 2) and full loss including summaries (rung 3).
fn damage_shards(dirs: &[PathBuf], shards: usize, count: usize, rng: &mut StdRng) {
    let mut chosen = BTreeSet::new();
    while chosen.len() < count.min(shards) {
        chosen.insert(rng.gen_range(0..shards));
    }
    for (k, &i) in chosen.iter().enumerate() {
        let shard = format!("shard-{i:04}.json");
        match k % 3 {
            0 => {
                // Repairable: primary copy only, replica stays healthy.
                fs::write(dirs[0].join(&shard), b"bitrot").unwrap();
            }
            1 => {
                // Rung 2: every full copy gone, summaries intact.
                for d in dirs {
                    let _ = fs::remove_file(d.join(&shard));
                }
            }
            _ => {
                // Rung 3: nothing left of this shard anywhere.
                for d in dirs {
                    let _ = fs::remove_file(d.join(&shard));
                    let _ = fs::remove_file(d.join(format!("summary-{i:04}.json")));
                }
            }
        }
    }
}

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let total = dfs.subdataset_total(hot) as f64;
    let array = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let view = array.view(hot);
    let sel = SelectionConfig::default();

    // Fault horizon: crashes land inside the healthy phase.
    let mut probe = LocalityScheduler::new(&dfs);
    let healthy_end = run_selection(&dfs, &truth, &mut probe, &sel).end;
    let horizon = SimTime::from_micros(healthy_end.as_micros().max(1));

    let (rates, seeds): (&[f64], u64) = if quick() {
        (&[0.0, 0.25], 2)
    } else {
        (&[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], 5)
    };

    let run = |rate: f64,
               name: &str,
               detect: bool,
               mk: &mut dyn FnMut() -> Box<dyn MapScheduler>|
     -> CrashRow {
        let mut acc = CrashRow {
            rate,
            scheduler: name.to_string(),
            ..CrashRow::default()
        };
        let mut detections = 0usize;
        for seed in 0..seeds {
            let plan = FaultPlan::random(NODES as usize, 0xFA01 + seed, rate, horizon);
            let faults = if detect {
                FaultConfig::with_detection(plan, DetectorConfig::default())
            } else {
                FaultConfig::new(plan)
            };
            let mut sched = mk();
            let out = run_selection_faulty(&dfs, &truth, sched.as_mut(), &sel, &faults);
            acc.recovered += out.per_node_bytes.iter().sum::<u64>() as f64 / total;
            acc.survivor_imbalance += survivor_imbalance(&out);
            acc.phase_secs += out.end.as_secs_f64();
            acc.recovery_secs += out.faults.recovery_secs;
            acc.reexecuted += out.faults.reexecuted_tasks as f64;
            acc.wasted_mb += out.faults.wasted_bytes_read as f64 / (1024.0 * 1024.0);
            acc.detection_secs += out.faults.detection_latency_secs.iter().sum::<f64>();
            detections += out.faults.detection_latency_secs.len();
        }
        let n = seeds as f64;
        acc.recovered /= n;
        acc.survivor_imbalance /= n;
        acc.phase_secs /= n;
        acc.recovery_secs /= n;
        acc.reexecuted /= n;
        acc.wasted_mb /= n;
        acc.detection_secs = if detections == 0 {
            0.0
        } else {
            acc.detection_secs / detections as f64
        };
        acc
    };

    println!("== Fault sweep: crash rate vs recovery ({NODES} nodes, {seeds} seeds/rate) ==");
    let mut t = Table::new([
        "crash rate",
        "sched",
        "recovered",
        "survivor max/avg",
        "phase (s)",
        "recovery (s)",
        "detect (s)",
        "re-exec tasks",
        "wasted MB",
    ]);
    let mut crash_sweep = Vec::new();
    for &rate in rates {
        let rows = [
            run(rate, "locality", false, &mut || {
                Box::new(LocalityScheduler::new(&dfs))
            }),
            run(rate, "datanet", false, &mut || {
                Box::new(DataNetScheduler::new(&dfs, &view))
            }),
            run(rate, "datanet-det", true, &mut || {
                Box::new(DataNetScheduler::new(&dfs, &view))
            }),
        ];
        for a in rows {
            t.row([
                format!("{rate:.2}"),
                a.scheduler.clone(),
                format!("{:.1}%", a.recovered * 100.0),
                format!("{:.3}", a.survivor_imbalance),
                format!("{:.2}", a.phase_secs),
                format!("{:.2}", a.recovery_secs),
                format!("{:.3}", a.detection_secs),
                format!("{:.1}", a.reexecuted),
                format!("{:.1}", a.wasted_mb),
            ]);
            crash_sweep.push(a);
        }
    }
    t.print();

    println!("\n== Metadata corruption sweep: shard damage vs degradation ladder ==");
    let mut t = Table::new([
        "corrupt rate",
        "shards",
        "repaired",
        "quarantined",
        "rung1 blocks",
        "rung2 blocks",
        "rung3 blocks",
        "est err",
        "recovered",
        "phase (s)",
    ]);
    let mut corruption_sweep = Vec::new();
    for &rate in rates {
        let mut acc = CorruptionRow {
            rate,
            ..CorruptionRow::default()
        };
        for seed in 0..seeds {
            let dirs: Vec<PathBuf> = (0..2)
                .map(|r| {
                    let d = std::env::temp_dir().join(format!(
                        "datanet-faults-{}-{rate}-{seed}-r{r}",
                        std::process::id()
                    ));
                    let _ = fs::remove_dir_all(&d);
                    d
                })
                .collect();
            MetaStore::save_replicated(&array, &[&dirs[0], &dirs[1]], SHARD_BLOCKS).unwrap();
            let mut store = MetaStore::open_replicated(&[&dirs[0], &dirs[1]], 8).unwrap();
            let shards = store.manifest().shard_count();
            acc.shards = shards;
            let mut rng = StdRng::seed_from_u64(0xC0FF + seed);
            damage_shards(
                &dirs,
                shards,
                (rate * shards as f64).ceil() as usize,
                &mut rng,
            );

            let scrubbed = store.scrub();
            let out = run_selection_resilient(&dfs, hot, &mut store, &sel, None);
            acc.repaired += scrubbed.repaired as f64;
            acc.quarantined += scrubbed.quarantined.len() as f64;
            acc.rung_exact += out.meta.rungs.exact as f64;
            acc.rung_bloom += out.meta.rungs.bloom as f64;
            acc.rung_fallback += out.meta.rungs.fallback as f64;
            acc.est_error += out.meta.est_error;
            acc.recovered += out.per_node_bytes.iter().sum::<u64>() as f64 / total;
            acc.phase_secs += out.end.as_secs_f64();
            for d in &dirs {
                let _ = fs::remove_dir_all(d);
            }
        }
        let n = seeds as f64;
        acc.repaired /= n;
        acc.quarantined /= n;
        acc.rung_exact /= n;
        acc.rung_bloom /= n;
        acc.rung_fallback /= n;
        acc.est_error /= n;
        acc.recovered /= n;
        acc.phase_secs /= n;
        t.row([
            format!("{rate:.2}"),
            format!("{}", acc.shards),
            format!("{:.1}", acc.repaired),
            format!("{:.1}", acc.quarantined),
            format!("{:.1}", acc.rung_exact),
            format!("{:.1}", acc.rung_bloom),
            format!("{:.1}", acc.rung_fallback),
            format!("{:.4}", acc.est_error),
            format!("{:.1}%", acc.recovered * 100.0),
            format!("{:.2}", acc.phase_secs),
        ]);
        corruption_sweep.push(acc);
    }
    t.print();
    println!(
        "\nDataNet re-plans lost work by ElasticMap weight: its survivor imbalance stays\n\
         near the fault-free optimum while the locality baseline degrades with luck of\n\
         the surviving replicas. The detector rows pay a crash→suspicion latency but\n\
         match the oracle's recovery guarantees. Under shard damage the ladder steps\n\
         down — repairable copies are scrubbed back to rung 1, summary-only shards\n\
         answer on rung 2 and quarantined shards fall back to a rung-3 locality scan —\n\
         and every byte is still credited exactly once."
    );

    // One representative run under the recorder: the detector scheduler at
    // the highest swept crash rate, seed 0 — the full
    // crash → suspicion → re-plan lifecycle on one Perfetto timeline.
    let mut obs = None;
    if let Some(path) = path_flag("--trace") {
        let rate = rates.last().copied().unwrap_or(0.5).max(0.25);
        let plan = FaultPlan::random(NODES as usize, 0xFA01, rate, horizon);
        let faults = FaultConfig::with_detection(plan, DetectorConfig::default());
        let rec = Recorder::new();
        let mut sched = DataNetScheduler::new(&dfs, &view);
        let out = run_selection_faulty_traced(&dfs, &truth, &mut sched, &sel, &faults, &rec);
        let data = rec.take();
        let summary = data.summary(None);
        fs::write(&path, data.to_chrome_json()).unwrap();
        println!(
            "\nwrote Chrome trace to {} ({} spans, {} crash chain(s), {} unclosed, \
             {} straggler(s) / {} idler(s) over {} survivors)",
            path.display(),
            summary.spans,
            summary.crash_chains.len(),
            summary.unclosed_spans,
            summary.stragglers.len(),
            summary.idlers.len(),
            NODES as usize - out.faults.crashed_nodes.len(),
        );
        obs = Some(summary);
    }

    if let Some(path) = path_flag("--json") {
        let report = FaultsReport {
            nodes: NODES,
            seeds,
            crash_sweep,
            corruption_sweep,
            obs,
        };
        fs::write(&path, serde_json::to_vec_pretty(&report).unwrap()).unwrap();
        println!("\nwrote JSON report to {}", path.display());
    }
}
