//! Fault-injection sweep: how gracefully each scheduler degrades as nodes
//! crash mid-selection.
//!
//! For each failure rate, random fault plans (node 0 always survives) are
//! injected into the selection phase under both the locality baseline and
//! DataNet. Reported per rate, averaged over seeds:
//!
//! * bytes recovered (credited / sub-dataset total — < 100% only when every
//!   replica of some block died or the retry budget ran out);
//! * post-failure workload imbalance across the *survivors*;
//! * phase end and recovery time (first crash → completion);
//! * re-executed tasks and wasted re-read bytes.
//!
//! DataNet re-plans the lost work by ElasticMap weight, so its survivor
//! imbalance stays low while the locality baseline's drifts with whatever
//! replica happened to be alive.

use datanet::{ElasticMapArray, Separation};
use datanet_bench::{movie_dataset, quick, Table, NODES};
use datanet_cluster::{FaultPlan, SimTime};
use datanet_mapreduce::{
    run_selection, run_selection_faulty, DataNetScheduler, FaultConfig, LocalityScheduler,
    MapScheduler, SelectionConfig, SelectionOutcome,
};

fn survivor_imbalance(out: &SelectionOutcome) -> f64 {
    let survivors: Vec<f64> = out
        .per_node_bytes
        .iter()
        .enumerate()
        .filter(|(n, _)| !out.faults.crashed_nodes.contains(n))
        .map(|(_, &b)| b as f64)
        .collect();
    let mean = survivors.iter().sum::<f64>() / survivors.len() as f64;
    if mean == 0.0 {
        return 1.0;
    }
    survivors.iter().cloned().fold(0.0, f64::max) / mean
}

struct Acc {
    recovered: f64,
    imbalance: f64,
    end_secs: f64,
    recovery_secs: f64,
    reexecuted: f64,
    wasted_mb: f64,
}

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let total = dfs.subdataset_total(hot) as f64;
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let sel = SelectionConfig::default();

    // Fault horizon: crashes land inside the healthy phase.
    let mut probe = LocalityScheduler::new(&dfs);
    let healthy_end = run_selection(&dfs, &truth, &mut probe, &sel).end;
    let horizon = SimTime::from_micros(healthy_end.as_micros().max(1));

    let (rates, seeds): (&[f64], u64) = if quick() {
        (&[0.0, 0.25], 2)
    } else {
        (&[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], 5)
    };

    let run = |rate: f64, mk: &mut dyn FnMut() -> Box<dyn MapScheduler>| -> Acc {
        let mut acc = Acc {
            recovered: 0.0,
            imbalance: 0.0,
            end_secs: 0.0,
            recovery_secs: 0.0,
            reexecuted: 0.0,
            wasted_mb: 0.0,
        };
        for seed in 0..seeds {
            let plan = FaultPlan::random(NODES as usize, 0xFA01 + seed, rate, horizon);
            let mut sched = mk();
            let out =
                run_selection_faulty(&dfs, &truth, sched.as_mut(), &sel, &FaultConfig::new(plan));
            acc.recovered += out.per_node_bytes.iter().sum::<u64>() as f64 / total;
            acc.imbalance += survivor_imbalance(&out);
            acc.end_secs += out.end.as_secs_f64();
            acc.recovery_secs += out.faults.recovery_secs;
            acc.reexecuted += out.faults.reexecuted_tasks as f64;
            acc.wasted_mb += out.faults.wasted_bytes_read as f64 / (1024.0 * 1024.0);
        }
        let n = seeds as f64;
        acc.recovered /= n;
        acc.imbalance /= n;
        acc.end_secs /= n;
        acc.recovery_secs /= n;
        acc.reexecuted /= n;
        acc.wasted_mb /= n;
        acc
    };

    println!("== Fault sweep: crash rate vs recovery ({NODES} nodes, {seeds} seeds/rate) ==");
    let mut t = Table::new([
        "crash rate",
        "sched",
        "recovered",
        "survivor max/avg",
        "phase (s)",
        "recovery (s)",
        "re-exec tasks",
        "wasted MB",
    ]);
    for &rate in rates {
        let loc = run(rate, &mut || Box::new(LocalityScheduler::new(&dfs)));
        let dn = run(rate, &mut || Box::new(DataNetScheduler::new(&dfs, &view)));
        for (name, a) in [("locality", &loc), ("datanet", &dn)] {
            t.row([
                format!("{rate:.2}"),
                name.to_string(),
                format!("{:.1}%", a.recovered * 100.0),
                format!("{:.3}", a.imbalance),
                format!("{:.2}", a.end_secs),
                format!("{:.2}", a.recovery_secs),
                format!("{:.1}", a.reexecuted),
                format!("{:.1}", a.wasted_mb),
            ]);
        }
    }
    t.print();
    println!(
        "\nDataNet re-plans lost work by ElasticMap weight: its survivor imbalance stays\n\
         near the fault-free optimum while the locality baseline degrades with luck of\n\
         the surviving replicas. Recovery < 100% appears only when every replica of a\n\
         block died (reported, never silently dropped)."
    );
}
