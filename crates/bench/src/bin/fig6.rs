//! Figure 6 — map execution times on the filtered sub-dataset.
//!
//! (a) Per-node Top-K Search map times on 32 nodes (paper: 5 s … 64 s
//!     without DataNet).
//! (b) Moving Average min/avg/max map time.
//! (c) Word Count min/avg/max map time — a larger min–max gap than Moving
//!     Average because "with greater computational requirements, the issue
//!     of imbalance becomes more serious".

use datanet::{ElasticMapArray, Separation};
use datanet_analytics::profiles::{moving_average_profile, top_k_profile, word_count_profile};
use datanet_bench::{movie_dataset, quick, Table, NODES};
use datanet_mapreduce::{
    run_analysis, run_selection, AnalysisConfig, DataNetScheduler, LocalityScheduler,
    SelectionConfig,
};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let sel = SelectionConfig::default();
    let ana = AnalysisConfig::default();

    let mut base = LocalityScheduler::new(&dfs);
    let without = run_selection(&dfs, &truth, &mut base, &sel);
    let mut dn = DataNetScheduler::new(&dfs, &view);
    let with = run_selection(&dfs, &truth, &mut dn, &sel);

    println!("== Figure 6(a): Top-K Search map time per node (s) ==");
    let tw = run_analysis(&without.per_node_bytes, &top_k_profile(), &ana);
    let td = run_analysis(&with.per_node_bytes, &top_k_profile(), &ana);
    let mut t = Table::new(["node", "without DataNet", "with DataNet"]);
    let rows = if quick() { 8 } else { NODES as usize };
    for n in 0..rows {
        t.row([
            n.to_string(),
            format!("{:.3}", tw.map_secs[n]),
            format!("{:.3}", td.map_secs[n]),
        ]);
    }
    t.print();
    println!(
        "slowest/fastest map without DataNet: {:.3}s / {:.3}s ({:.1}x)",
        tw.map_summary().max(),
        tw.map_summary().min(),
        tw.map_summary().max() / tw.map_summary().min()
    );

    println!("\n== Figure 6(b)(c): min/avg/max map time (s) ==");
    let mut t = Table::new(["job", "variant", "min", "avg", "max", "max-min gap"]);
    for profile in [moving_average_profile(), word_count_profile()] {
        for (name, filtered) in [
            ("without DataNet", &without.per_node_bytes),
            ("with DataNet", &with.per_node_bytes),
        ] {
            let rep = run_analysis(filtered, &profile, &ana);
            let s = rep.map_summary();
            t.row([
                profile.name.clone(),
                name.to_string(),
                format!("{:.3}", s.min()),
                format!("{:.3}", s.mean()),
                format!("{:.3}", s.max()),
                format!("{:.3}", s.max() - s.min()),
            ]);
        }
    }
    t.print();
    println!(
        "(the WordCount gap exceeds the MovingAverage gap — heavier compute\n\
         amplifies the same byte imbalance, as in the paper)"
    );
}
