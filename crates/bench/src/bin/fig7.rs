//! Figure 7 — shuffle-phase execution times.
//!
//! "The shuffle phase starts whenever a map task is finished and ends when
//! all map tasks have been executed." With imbalanced maps, reducers sit
//! waiting for the straggler, so shuffle tasks take 4–5× longer without
//! DataNet.

use datanet::{ElasticMapArray, Separation};
use datanet_analytics::profiles::{top_k_profile, word_count_profile};
use datanet_bench::{movie_dataset, quick, Table, NODES};
use datanet_mapreduce::{
    run_analysis, run_selection, AnalysisConfig, DataNetScheduler, LocalityScheduler,
    SelectionConfig,
};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let sel = SelectionConfig::default();
    let ana = AnalysisConfig::default();

    let mut base = LocalityScheduler::new(&dfs);
    let without = run_selection(&dfs, &truth, &mut base, &sel);
    let mut dn = DataNetScheduler::new(&dfs, &view);
    let with = run_selection(&dfs, &truth, &mut dn, &sel);

    println!("== Figure 7: shuffle execution time (s), min/avg/max ==");
    let mut t = Table::new(["job", "variant", "min", "avg", "max"]);
    let mut ratios = Vec::new();
    let profiles = if quick() {
        vec![word_count_profile()]
    } else {
        vec![word_count_profile(), top_k_profile()]
    };
    for profile in profiles {
        let jw = run_analysis(&without.per_node_bytes, &profile, &ana);
        let jd = run_analysis(&with.per_node_bytes, &profile, &ana);
        for (name, rep) in [("without DataNet", &jw), ("with DataNet", &jd)] {
            let s = rep.shuffle_summary();
            t.row([
                profile.name.clone(),
                name.to_string(),
                format!("{:.3}", s.min()),
                format!("{:.3}", s.mean()),
                format!("{:.3}", s.max()),
            ]);
        }
        ratios.push((
            profile.name.clone(),
            jw.shuffle_summary().max() / jd.shuffle_summary().max().max(1e-9),
        ));
    }
    t.print();
    for (job, r) in ratios {
        println!("{job}: shuffle max without/with = {r:.1}x (paper: 4-5x)");
    }
}
