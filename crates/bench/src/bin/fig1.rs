//! Figure 1 — the motivating observation.
//!
//! (a) Distribution of one movie's data over the first 128 HDFS blocks:
//!     content clustering puts most of it in a contiguous minority of
//!     blocks.
//! (b) Filtered-workload distribution over a 32-node cluster under
//!     Hadoop's default block-locality scheduling: heavily imbalanced.

use datanet_bench::{movie_dataset, quick, Table, NODES};
use datanet_mapreduce::{run_selection, LocalityScheduler, SelectionConfig};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let dist = dfs.subdataset_distribution(hot);
    let shown = if quick() { 32 } else { 128 };

    println!("== Figure 1(a): sub-dataset distribution over HDFS blocks ==");
    println!("(movie {hot}, bytes per block, first {shown} blocks)");
    let mut t = Table::new(["block", "kB"]);
    for (i, b) in dist.iter().take(shown).enumerate() {
        t.row([i.to_string(), format!("{:.1}", *b as f64 / 1024.0)]);
    }
    t.print();
    let total: u64 = dist.iter().sum();
    let mut sorted = dist.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top30: u64 = sorted.iter().take(30).sum();
    println!(
        "top-30 blocks hold {:.1}% of the sub-dataset ({} blocks total)\n",
        100.0 * top30 as f64 / total as f64,
        dist.len()
    );

    println!("== Figure 1(b): workload distribution over cluster nodes ==");
    println!("(bytes of movie {hot} filtered onto each of {NODES} nodes, locality scheduling)");
    let mut sched = LocalityScheduler::new(&dfs);
    let out = run_selection(&dfs, &dist, &mut sched, &SelectionConfig::default());
    let mut t = Table::new(["node", "kB"]);
    for (n, b) in out.per_node_bytes.iter().enumerate() {
        t.row([n.to_string(), format!("{:.1}", *b as f64 / 1024.0)]);
    }
    t.print();
    let s = out.workload_summary();
    println!(
        "min {:.1} kB  avg {:.1} kB  max {:.1} kB  (max/min = {:.1}x, max/avg = {:.2}x)",
        s.min() / 1024.0,
        s.mean() / 1024.0,
        s.max() / 1024.0,
        s.spread_ratio().unwrap_or(f64::INFINITY),
        out.imbalance()
    );
}
