//! Figure 10 — degree of balanced computing vs α.
//!
//! Sweeps the hash-map fraction α from 10% to 100% and reports the
//! max/min/avg per-node workload (normalised by the maximum) plus the
//! standard deviation. The paper's finding: "with only about 15% of the
//! sub-datasets recorded in the hash map, DataNet is able to achieve a
//! satisfactory workload balance … changing the percentage from 15 to 100
//! will have little effect".

use datanet::{ElasticMapArray, Separation};
use datanet_bench::{movie_dataset, quick, Table, NODES};
use datanet_mapreduce::{run_selection, DataNetScheduler, SelectionConfig};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let sel = SelectionConfig::default();

    println!("== Figure 10: workload balance vs alpha (normalised by max) ==");
    let mut t = Table::new(["alpha", "max", "min", "avg", "std dev"]);
    for pct in (10..=100).step_by(if quick() { 15 } else { 5 }) {
        let alpha = pct as f64 / 100.0;
        let view = ElasticMapArray::build(&dfs, &Separation::Alpha(alpha)).view(hot);
        let mut dn = DataNetScheduler::new(&dfs, &view);
        let out = run_selection(&dfs, &truth, &mut dn, &sel);
        let s = out.workload_summary();
        let norm = s.max();
        t.row([
            format!("{pct}%"),
            format!("{:.2}", s.max() / norm),
            format!("{:.2}", s.min() / norm),
            format!("{:.2}", s.mean() / norm),
            format!("{:.3}", s.std_dev() / norm),
        ]);
    }
    t.print();
    println!(
        "(compare the paper: max ~0.9, min ~0.7, flat from alpha = 15% upward;\n\
         normalisation here is by each row's max)"
    );
}
