//! Meta-data amortization — Section V-A-4's closing argument: "DataNet will
//! scan the raw data once to build all sub-dataset distributions, while the
//! method of dynamic adjustment will migrate the workload for each
//! sub-dataset analysis during runtime."
//!
//! This binary analyses the top-K movies back to back and accounts the
//! one-off scan cost against the per-job migration cost it replaces.

use datanet::{ElasticMapArray, Separation};
use datanet_analytics::profiles::word_count_profile;
use datanet_bench::{movie_dataset, Table, NODES};
use datanet_cluster::NodeSpec;
use datanet_mapreduce::{
    rebalance, run_analysis, run_selection, AnalysisConfig, DataNetScheduler, LocalityScheduler,
    SelectionConfig,
};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let jobs = 6usize;
    let targets: Vec<_> = catalog
        .by_size_desc()
        .into_iter()
        .take(jobs)
        .map(|(m, _)| m)
        .collect();
    let job = word_count_profile();
    let sel = SelectionConfig::default();
    let ana = AnalysisConfig::default();

    // One-off: build the meta-data for ALL sub-datasets in a single scan.
    // Scan cost ≈ one pass over every block at disk+scan speed, parallel
    // over nodes — the same cost as one content-oblivious selection pass.
    let scan_cost_secs = {
        let bytes_per_node = dfs.total_bytes() / NODES as u64;
        let spec = NodeSpec::marmot();
        bytes_per_node as f64 / spec.disk_bps as f64 + bytes_per_node as f64 / spec.cpu_bps as f64
    };
    let maps = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));

    let mut datanet_total = scan_cost_secs;
    let mut migration_total = 0.0;
    let mut t = Table::new([
        "movie",
        "DataNet job (s)",
        "migrate: fraction",
        "migrate+job (s)",
    ]);
    for &m in &targets {
        let truth = dfs.subdataset_distribution(m);

        // DataNet path: balanced selection + job.
        let mut dn = DataNetScheduler::new(&dfs, &maps.view(m));
        let with = run_selection(&dfs, &truth, &mut dn, &sel);
        let jd = run_analysis(&with.per_node_bytes, &job, &ana);
        let dn_secs = datanet_mapreduce::total_secs(with.end, jd.makespan_secs);
        datanet_total += dn_secs;

        // Reactive path: oblivious selection, then migrate, then job.
        let mut base = LocalityScheduler::new(&dfs);
        let without = run_selection(&dfs, &truth, &mut base, &sel);
        let mig = rebalance(&without.per_node_bytes, &NodeSpec::marmot());
        let jm = run_analysis(&mig.balanced, &job, &ana);
        let mig_secs =
            datanet_mapreduce::total_secs(without.end, mig.migration_secs + jm.makespan_secs);
        migration_total += mig_secs;

        t.row([
            m.to_string(),
            format!("{dn_secs:.3}"),
            format!("{:.1}%", mig.fraction * 100.0),
            format!("{mig_secs:.3}"),
        ]);
    }
    println!("== One scan vs per-job migration, {jobs} sub-dataset analyses ==");
    t.print();
    println!(
        "\ntotals: DataNet = {scan_cost_secs:.3}s scan + jobs = {datanet_total:.3}s;  \
         migration path = {migration_total:.3}s"
    );
    println!(
        "the single scan amortises across every subsequent analysis, while the\n\
         reactive path pays selection + migration for each one."
    );
    assert!(
        datanet_total < migration_total,
        "amortization should win over {jobs} jobs"
    );
}
