//! Figure 2 — the probability model of workload imbalance (Section II-B).
//!
//! Left: tail probabilities P(Z < E/3), P(Z < E/2), P(Z > 2E), P(Z > 3E)
//! as the cluster grows (k = 1.2, θ = 7, n = 512 blocks).
//! Right: the Γ(k=1.2, θ=7) per-block density.
//!
//! Also prints the expected node counts at m = 128 that the paper quotes.

use datanet_bench::{quick, Table};
use datanet_stats::{GammaDist, ImbalanceModel};

fn main() {
    let model = ImbalanceModel::paper_example();

    println!("== Figure 2 (left): tail probabilities vs cluster size ==");
    println!("(Z ~ Γ(nk/m, θ), k=1.2, θ=7, n=512)");
    let sizes: &[usize] = if quick() {
        &[2, 32, 128, 512]
    } else {
        &[2, 4, 8, 16, 32, 64, 96, 128, 192, 256, 384, 512]
    };
    let sizes = sizes.iter().copied();
    let mut t = Table::new(["nodes", "P(Z<E/3)", "P(Z<E/2)", "P(Z>2E)", "P(Z>3E)"]);
    for row in model.series(sizes) {
        t.row([
            row.nodes.to_string(),
            format!("{:.4}", row.p_below_third),
            format!("{:.4}", row.p_below_half),
            format!("{:.4}", row.p_above_twice),
            format!("{:.4}", row.p_above_thrice),
        ]);
    }
    t.print();

    println!("\n== Figure 2 (right): Γ(1.2, 7) density ==");
    let g = GammaDist::new(1.2, 7.0);
    let mut t = Table::new(["x", "pdf"]);
    for i in (0..=30).step_by(if quick() { 5 } else { 1 }) {
        let x = i as f64;
        t.row([format!("{x:.0}"), format!("{:.4}", g.pdf(x))]);
    }
    t.print();

    println!("\n== Expected node counts at m = 128 ==");
    println!(
        "below E/3: {:.1} nodes   below E/2: {:.1} nodes   above 2E: {:.1} nodes   above 3E: {:.2} nodes",
        model.expected_nodes_below(128, 1.0 / 3.0),
        model.expected_nodes_below(128, 0.5),
        model.expected_nodes_above(128, 2.0),
        model.expected_nodes_above(128, 3.0),
    );
    println!(
        "(paper quotes 3.9 / 1.5 / 4.0; our E/3 and 2E values match 3.9 and 4.0 —\n\
         see EXPERIMENTS.md for the label discrepancy in the paper's text)"
    );
}
