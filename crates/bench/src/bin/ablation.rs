//! Ablation: where does DataNet's balance come from, and what does each
//! design choice cost?
//!
//! Compares, on the Figure 5 workload:
//! * Hadoop locality scheduling (baseline);
//! * Algorithm 1 with perfect meta-data (`Separation::All`);
//! * Algorithm 1 with the paper's α = 0.3 ElasticMap;
//! * Algorithm 1 with bloom-only meta-data (α = 0);
//! * the Ford–Fulkerson optimal plan with perfect meta-data.

use datanet::{ElasticMapArray, FordFulkersonPlanner, Separation};
use datanet_bench::{movie_dataset, Table, NODES};
use datanet_mapreduce::{
    run_selection, DataNetScheduler, DelayScheduler, LocalityScheduler, PlannedScheduler,
    SelectionConfig,
};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let cfg = SelectionConfig::default();

    let mut t = Table::new([
        "scheduler",
        "meta-data",
        "imbalance (max/avg)",
        "max/min",
        "gini",
        "locality",
        "blocks read",
    ]);

    let mut report = |name: &str, meta: &str, out: &datanet_mapreduce::SelectionOutcome| {
        let s = out.workload_summary();
        t.row([
            name.to_string(),
            meta.to_string(),
            format!("{:.3}", out.imbalance()),
            format!("{:.2}", s.spread_ratio().unwrap_or(f64::INFINITY)),
            format!("{:.3}", out.gini()),
            format!("{:.0}%", out.locality_fraction() * 100.0),
            out.total_tasks.to_string(),
        ]);
    };

    let mut base = LocalityScheduler::new(&dfs);
    let o = run_selection(&dfs, &truth, &mut base, &cfg);
    report("locality (Hadoop)", "none", &o);

    // Delay scheduling fixes locality, not distribution: same imbalance.
    let mut delay = DelayScheduler::new(&dfs, 3);
    let o = run_selection(&dfs, &truth, &mut delay, &cfg);
    report("delay scheduling", "none", &o);

    for (label, sep) in [
        ("exact (All)", Separation::All),
        ("alpha=0.3", Separation::Alpha(0.3)),
        ("bloom-only", Separation::BloomOnly),
    ] {
        let view = ElasticMapArray::build(&dfs, &sep).view(hot);
        let mut dn = DataNetScheduler::new(&dfs, &view);
        let o = run_selection(&dfs, &truth, &mut dn, &cfg);
        report("algorithm 1 (paced)", label, &o);
    }

    // The paper's literal best-fit-to-terminal-target rule, for contrast.
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let mut literal =
        DataNetScheduler::with_policy(&dfs, &view, datanet::BalancePolicy::BestFitTerminal);
    let o = run_selection(&dfs, &truth, &mut literal, &cfg);
    report("algorithm 1 (best-fit literal)", "alpha=0.3", &o);

    let view = ElasticMapArray::build(&dfs, &Separation::All).view(hot);
    let plan = FordFulkersonPlanner::new(&dfs, &view).plan();
    let mut ff = PlannedScheduler::new(&plan, dfs.namenode());
    let o = run_selection(&dfs, &truth, &mut ff, &cfg);
    report("ford-fulkerson", "exact (All)", &o);

    t.print();
}
