//! Figure 5 — the headline comparison on the 32-node cluster.
//!
//! (a) Overall execution time of the four analysis jobs with and without
//!     DataNet (paper improvements: MovingAverage 20%, WordCount 39.1%,
//!     Histogram 40.6%, TopKSearch 42%).
//! (b) Size of the target sub-dataset over HDFS blocks.
//! (c) Filtered workload over the 32 nodes, with and without DataNet.

use datanet::{ElasticMapArray, Separation};
use datanet_analytics::profiles::{
    histogram_profile, moving_average_profile, top_k_profile, word_count_profile,
};
use datanet_bench::{movie_dataset, quick, Table, NODES};
use datanet_mapreduce::{
    run_analysis, run_selection, AnalysisConfig, DataNetScheduler, LocalityScheduler,
    SelectionConfig,
};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    // Paper: "we set the value of α in Equation 5 to 0.3".
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);

    // Selection under both schedulers.
    let sel_cfg = SelectionConfig::default();
    let mut base = LocalityScheduler::new(&dfs);
    let without = run_selection(&dfs, &truth, &mut base, &sel_cfg);
    let mut dn = DataNetScheduler::new(&dfs, &view);
    let with = run_selection(&dfs, &truth, &mut dn, &sel_cfg);

    println!("== Figure 5(a): overall execution time (s) of the four jobs ==");
    let ana = AnalysisConfig::default();
    let jobs = [
        moving_average_profile(),
        word_count_profile(),
        histogram_profile(),
        top_k_profile(),
    ];
    let mut t = Table::new([
        "job",
        "without DataNet",
        "with DataNet",
        "improvement",
        "cpu util (w/o -> w/)",
    ]);
    for job in &jobs {
        let jw = run_analysis(&without.per_node_bytes, job, &ana);
        let jd = run_analysis(&with.per_node_bytes, job, &ana);
        let impr = 100.0 * (1.0 - jd.makespan_secs / jw.makespan_secs);
        t.row([
            job.name.clone(),
            format!("{:.2}", jw.makespan_secs),
            format!("{:.2}", jd.makespan_secs),
            format!("{impr:.1}%"),
            format!(
                "{:.0}% -> {:.0}%",
                jw.util_summary().mean() * 100.0,
                jd.util_summary().mean() * 100.0
            ),
        ]);
    }
    t.print();
    println!("(paper: 20% / 39.1% / 40.6% / 42%)\n");

    let shown = if quick() { 16 } else { 64 };
    println!("== Figure 5(b): size of data over HDFS blocks (kB, first {shown} blocks) ==");
    let mut t = Table::new(["block", "kB"]);
    for (i, b) in truth.iter().take(shown).enumerate() {
        t.row([i.to_string(), format!("{:.1}", *b as f64 / 1024.0)]);
    }
    t.print();

    println!("\n== Figure 5(c): workload after selection (kB per node) ==");
    let mut t = Table::new(["node", "without DataNet", "with DataNet"]);
    for n in 0..NODES as usize {
        t.row([
            n.to_string(),
            format!("{:.1}", without.per_node_bytes[n] as f64 / 1024.0),
            format!("{:.1}", with.per_node_bytes[n] as f64 / 1024.0),
        ]);
    }
    t.print();
    println!(
        "imbalance (max/avg): without = {:.2}, with = {:.2}",
        without.imbalance(),
        with.imbalance()
    );
    println!(
        "blocks scanned: without = {} (all), with = {} (ElasticMap skips empty blocks)",
        without.total_tasks, with.total_tasks
    );
}
