//! Runs every table/figure reproduction in paper order, then the extension
//! studies (ablation, aggregation planning, heterogeneous clusters). Each
//! section's logic lives in the corresponding binary; this file only
//! orchestrates.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("binary directory");
    let binaries = [
        "fig1",
        "fig2",
        "table1",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "table2",
        "fig9",
        "fig10",
        "migration",
        "ablation",
        "aggregation",
        "hetero",
        "speculation",
        "amortization",
        "io_savings",
    ];
    for bin in binaries {
        println!("\n######## {bin} ########\n");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{bin} exited with {status}");
    }
}
