//! Heterogeneous clusters — Section IV-B's "according to the computing
//! capability of computational nodes, we can calculate the amount of
//! sub-datasets to be assigned to each node", made concrete.
//!
//! Half the cluster runs 2× faster CPUs (a realistic mixed-generation
//! fleet). Three schedules for the Top-K job over the hot movie:
//! * Hadoop locality (content- and capability-oblivious);
//! * DataNet with uniform targets (balances bytes — wrong goal here);
//! * DataNet with capability-proportional targets (balances *time*).

use datanet::planner::BalancePolicy;
use datanet::{Algorithm1, ElasticMapArray, Separation};
use datanet_analytics::profiles::top_k_profile;
use datanet_bench::{movie_dataset, Table, NODES};
use datanet_cluster::NodeSpec;
use datanet_mapreduce::{
    capability_of, run_analysis_hetero, run_selection, AnalysisConfig, LocalityScheduler,
    PlannedScheduler, SelectionConfig,
};

fn main() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let job = top_k_profile();

    // Mixed fleet: nodes 0..16 fast (2x CPU), 16..32 stock Marmot.
    let fast = NodeSpec {
        cpu_bps: 2 * NodeSpec::marmot().cpu_bps,
        ..NodeSpec::marmot()
    };
    let slow = NodeSpec::marmot();
    let specs: Vec<NodeSpec> = (0..NODES)
        .map(|i| if i < NODES / 2 { fast } else { slow })
        .collect();
    let caps: Vec<f64> = specs.iter().map(|s| capability_of(s, &job)).collect();

    let sel = SelectionConfig::default();
    let ana = AnalysisConfig::default();

    let mut rows = Vec::new();
    // 1. Locality baseline.
    let mut base = LocalityScheduler::new(&dfs);
    let out = run_selection(&dfs, &truth, &mut base, &sel);
    rows.push(("locality (oblivious)", out.per_node_bytes.clone()));

    // 2. DataNet, uniform byte targets.
    let uniform_plan = Algorithm1::new(&dfs, &view).plan_balanced();
    let mut s2 = PlannedScheduler::new(&uniform_plan, dfs.namenode());
    let out = run_selection(&dfs, &truth, &mut s2, &sel);
    rows.push(("datanet (uniform targets)", out.per_node_bytes.clone()));

    // 3. DataNet, capability-proportional targets.
    let cap_plan =
        Algorithm1::with_capabilities(dfs.namenode(), &view, BalancePolicy::PacedGreedy, &caps)
            .plan_balanced();
    let mut s3 = PlannedScheduler::new(&cap_plan, dfs.namenode());
    let out = run_selection(&dfs, &truth, &mut s3, &sel);
    rows.push(("datanet (capability targets)", out.per_node_bytes.clone()));

    println!("== Heterogeneous cluster (16 fast + 16 stock nodes), Top-K Search ==");
    let mut t = Table::new([
        "schedule",
        "byte imbalance",
        "map min (s)",
        "map max (s)",
        "job makespan (s)",
    ]);
    for (name, filtered) in &rows {
        let rep = run_analysis_hetero(filtered, &job, &ana, &specs);
        let total: u64 = filtered.iter().sum();
        let mean = total as f64 / filtered.len() as f64;
        let max = *filtered.iter().max().expect("non-empty") as f64;
        t.row([
            name.to_string(),
            format!("{:.2}", max / mean),
            format!("{:.4}", rep.map_summary().min()),
            format!("{:.4}", rep.map_summary().max()),
            format!("{:.4}", rep.makespan_secs),
        ]);
    }
    t.print();
    println!(
        "\ncapability targets deliberately *unbalance bytes* (fast nodes get more)\n\
         so that completion times equalise — the makespan win over uniform targets."
    );
}
