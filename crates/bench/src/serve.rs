//! The `serve` benchmark behind `BENCH_serve.json` and the CI
//! `serve-gate` job.
//!
//! ## Methodology (DESIGN.md §18)
//!
//! The question the gate answers: what does the epoch-keyed plan cache
//! buy the serving plane under multi-tenant load, and does caching ever
//! change what tenants are served?
//!
//! The workload is a synthetic serving world ([`SERVE_SUBDATASETS`]
//! sub-datasets striped over [`SERVE_NODES`] nodes) under a skewed query
//! stream, swept over [`SERVE_TENANT_POINTS`] concurrent tenants with the
//! plan cache on and off. Per point the report records two kinds of
//! numbers:
//!
//! * **simulated** — completed/rejected/shed counts and the p50/p99
//!   admission-to-completion latency on the simulated clock. These are
//!   deterministic functions of the stream, so they are gated as *exact*
//!   equalities: against the cache-off twin (a coherent cache may change
//!   where plans come from, never what they are) and against the
//!   committed baseline (a drift means the planner or the serving plane
//!   changed — re-commit the baseline deliberately).
//! * **wall-clock** — how long the serve call itself takes, best of
//!   several repetitions. The cache's entire job is to skip planner
//!   walks, so the gate demands cache-on decision throughput at least
//!   [`SERVE_CACHE_SPEEDUP_FLOOR`]× cache-off at the
//!   [`SERVE_GATE_TENANTS`]-tenant point.

use crate::table::Table;
use datanet::Separation;
use datanet_dfs::{Dfs, DfsConfig, Record, SubDatasetId, Topology};
use datanet_obs::Recorder;
use datanet_serve::{
    generate_stream, serve, Disposition, ServeConfig, StreamConfig, TenantMix, World,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Tenant counts of the sweep.
pub const SERVE_TENANT_POINTS: [u32; 3] = [1, 8, 64];

/// The tenant count the cache-speedup gate reads.
pub const SERVE_GATE_TENANTS: u32 = 64;

/// Minimum cache-on / cache-off wall-clock throughput ratio at the gate
/// point (acceptance criterion): the cache must at least double decision
/// throughput once many tenants hammer a bounded set of sub-datasets.
pub const SERVE_CACHE_SPEEDUP_FLOOR: f64 = 2.0;

/// Sub-datasets in the serving world.
pub const SERVE_SUBDATASETS: u64 = 8;

/// Nodes in the serving world.
pub const SERVE_NODES: u32 = 10;

/// One (tenant count, cache flag) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchRow {
    /// Concurrent tenants of the point.
    pub tenants: u32,
    /// Whether the epoch-keyed plan cache was consulted.
    pub cache: bool,
    /// Queries admitted and completed (simulated, deterministic).
    pub completed: u32,
    /// Queries rejected at the door (simulated, deterministic).
    pub rejected: u32,
    /// Queries shed after queuing (simulated, deterministic).
    pub shed: u32,
    /// Plan-cache hits (0 with the cache off).
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Median arrival-to-completion latency, simulated µs.
    pub sim_p50_latency_us: u64,
    /// 99th-percentile arrival-to-completion latency, simulated µs.
    pub sim_p99_latency_us: u64,
    /// Completed queries per simulated second.
    pub sim_throughput_qps: f64,
    /// Best-of-repetitions wall-clock of the serve call, milliseconds.
    pub wall_ms: f64,
    /// Completed queries per wall-clock second at `wall_ms`.
    pub wall_qps: f64,
}

/// One `BENCH_serve.json` measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Whether the run was invoked with `--quick` (smaller world, fewer
    /// queries, fewer wall-clock repetitions; every gated ratio keeps its
    /// meaning).
    pub quick: bool,
    /// Nodes in the serving world.
    pub nodes: u32,
    /// Sub-datasets in the serving world.
    pub subdatasets: u64,
    /// Blocks in the serving world.
    pub blocks: usize,
    /// Queries per sweep point.
    pub queries: u32,
    /// The sweep: [`SERVE_TENANT_POINTS`] × {cache on, cache off}.
    pub rows: Vec<ServeBenchRow>,
}

/// The synthetic serving world: records striped round-robin over the
/// sub-datasets, written through the DFS placement policy.
fn build_world(records: u64, seed: u64) -> World {
    let dfs = Dfs::write_random(
        DfsConfig {
            block_size: 2_000,
            replication: 2,
            topology: Topology::single_rack(SERVE_NODES),
            seed,
        },
        (0..records).map(|i| Record::new(SubDatasetId(i % SERVE_SUBDATASETS), i, 280, seed ^ i)),
    );
    World::new(dfs, SERVE_SUBDATASETS, Separation::Alpha(0.3), seed)
}

/// Run the serve benchmark sweep. Every simulated number is deterministic;
/// only the `wall_*` fields move with the machine.
pub fn run_serve_bench(quick: bool) -> ServeBenchReport {
    let records: u64 = if quick { 2_000 } else { 8_000 };
    let queries: u32 = if quick { 240 } else { 720 };
    let iters = if quick { 3 } else { 5 };
    let seed = 0xBE4C_u64;

    let proto = build_world(records, seed);
    let blocks = proto.dfs().block_count();
    let mut rows = Vec::new();
    for tenants in SERVE_TENANT_POINTS {
        let stream = generate_stream(&StreamConfig {
            tenants,
            queries,
            gap_us: 300,
            subdatasets: SERVE_SUBDATASETS,
            mix: TenantMix::Skewed,
            seed,
        });
        for cache in [true, false] {
            let cfg = ServeConfig {
                workers: 4,
                queue_cap: 64,
                // Generous quantum: the bench measures planning cost, not
                // quota pressure, so every arrival should admit promptly
                // at every tenant count.
                quantum_bytes: 512 * 1024,
                cache,
                ..ServeConfig::default()
            };
            let mut report = None;
            let mut best = f64::INFINITY;
            for _ in 0..iters {
                let world = proto.clone();
                let t0 = Instant::now();
                let r = serve(world, &stream, &[], &cfg, &Recorder::off());
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                report = Some(r);
            }
            let r = report.expect("at least one repetition ran");
            let a = &r.answers;
            let completed = a
                .outcomes
                .iter()
                .filter(|o| matches!(o.disposition, Disposition::Completed { .. }))
                .count() as u32;
            rows.push(ServeBenchRow {
                tenants,
                cache,
                completed,
                rejected: a.tenants.iter().map(|t| t.rejected).sum(),
                shed: a.tenants.iter().map(|t| t.shed).sum(),
                cache_hits: a.cache_hits,
                cache_misses: a.cache_misses,
                sim_p50_latency_us: r.timing.p50_latency_us,
                sim_p99_latency_us: r.timing.p99_latency_us,
                sim_throughput_qps: r.timing.throughput_qps,
                wall_ms: best,
                wall_qps: if best > 0.0 {
                    completed as f64 / (best / 1e3)
                } else {
                    0.0
                },
            });
        }
    }
    ServeBenchReport {
        quick,
        nodes: SERVE_NODES,
        subdatasets: SERVE_SUBDATASETS,
        blocks,
        queries,
        rows,
    }
}

impl ServeBenchReport {
    /// The row at a sweep point.
    fn row_at(&self, tenants: u32, cache: bool) -> Option<&ServeBenchRow> {
        self.rows
            .iter()
            .find(|r| r.tenants == tenants && r.cache == cache)
    }

    /// Cache-on / cache-off wall-clock throughput ratio at a tenant point.
    pub fn cache_speedup(&self, tenants: u32) -> Option<f64> {
        let on = self.row_at(tenants, true)?;
        let off = self.row_at(tenants, false)?;
        (on.wall_qps > 0.0).then(|| on.wall_qps / off.wall_qps.max(f64::MIN_POSITIVE))
    }

    /// The human-readable summary table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "== serving-plane bench: {} nodes, {} sub-datasets, {} blocks, \
             {} queries/point{} ==\n",
            self.nodes,
            self.subdatasets,
            self.blocks,
            self.queries,
            if self.quick { " (quick)" } else { "" }
        );
        let mut t = Table::new([
            "tenants",
            "cache",
            "completed",
            "shed",
            "hits/misses",
            "sim p50 ms",
            "sim p99 ms",
            "wall ms",
            "wall q/s",
        ]);
        for r in &self.rows {
            t.row([
                r.tenants.to_string(),
                if r.cache { "on" } else { "off" }.into(),
                r.completed.to_string(),
                r.shed.to_string(),
                format!("{}/{}", r.cache_hits, r.cache_misses),
                format!("{:.3}", r.sim_p50_latency_us as f64 / 1e3),
                format!("{:.3}", r.sim_p99_latency_us as f64 / 1e3),
                format!("{:.2}", r.wall_ms),
                format!("{:.0}", r.wall_qps),
            ]);
        }
        s.push_str(&t.render());
        for tenants in SERVE_TENANT_POINTS {
            if let Some(x) = self.cache_speedup(tenants) {
                s.push_str(&format!(
                    "cache speedup at {tenants:>2} tenant(s): {x:.2}x decision throughput\n"
                ));
            }
        }
        s
    }

    /// Render the human-readable summary to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The serve gate. Returns every violated check, empty = pass.
    pub fn gate_against(&self, baseline: &ServeBenchReport) -> Vec<String> {
        let mut violations = Vec::new();

        // 1. Cache coherence inside the measurement: at every point the
        // cache may only move wall-clock, never the simulated outcome.
        for tenants in SERVE_TENANT_POINTS {
            match (self.row_at(tenants, true), self.row_at(tenants, false)) {
                (Some(on), Some(off)) => {
                    if (on.completed, on.rejected, on.shed)
                        != (off.completed, off.rejected, off.shed)
                        || on.sim_p50_latency_us != off.sim_p50_latency_us
                        || on.sim_p99_latency_us != off.sim_p99_latency_us
                    {
                        violations.push(format!(
                            "cache changed the simulated outcome at {tenants} tenant(s): \
                             on ({}, {}, {}, p50 {}, p99 {}) vs off ({}, {}, {}, p50 {}, p99 {})",
                            on.completed,
                            on.rejected,
                            on.shed,
                            on.sim_p50_latency_us,
                            on.sim_p99_latency_us,
                            off.completed,
                            off.rejected,
                            off.shed,
                            off.sim_p50_latency_us,
                            off.sim_p99_latency_us
                        ));
                    }
                }
                _ => violations.push(format!("sweep is missing the {tenants}-tenant point")),
            }
        }

        // 2. The speedup floor at the gate point.
        match self.cache_speedup(SERVE_GATE_TENANTS) {
            Some(x) if x < SERVE_CACHE_SPEEDUP_FLOOR => violations.push(format!(
                "cache speedup below floor at {SERVE_GATE_TENANTS} tenants: \
                 {x:.2}x < {SERVE_CACHE_SPEEDUP_FLOOR:.1}x"
            )),
            Some(_) => {}
            None => violations.push(format!(
                "no {SERVE_GATE_TENANTS}-tenant rows to compute the cache speedup"
            )),
        }

        // 3. Simulated numbers must match the committed baseline exactly —
        // they are deterministic, so any drift is a real behaviour change.
        // Quick and full mode run different worlds, so the comparison only
        // makes sense between like modes.
        if self.quick != baseline.quick {
            violations.push(format!(
                "quick-mode mismatch: measurement quick={} vs baseline quick={} — run the \
                 gate in the baseline's mode or regenerate the baseline",
                self.quick, baseline.quick
            ));
            return violations;
        }
        for tenants in SERVE_TENANT_POINTS {
            match (self.row_at(tenants, true), baseline.row_at(tenants, true)) {
                (Some(cur), Some(base)) => {
                    if (cur.completed, cur.rejected, cur.shed)
                        != (base.completed, base.rejected, base.shed)
                        || cur.sim_p50_latency_us != base.sim_p50_latency_us
                        || cur.sim_p99_latency_us != base.sim_p99_latency_us
                        || cur.cache_misses != base.cache_misses
                    {
                        violations.push(format!(
                            "simulated outcome drifted from baseline at {tenants} tenant(s) \
                             — re-commit BENCH_serve_baseline.json if the serving plane or \
                             the planner changed deliberately"
                        ));
                    }
                }
                _ => violations.push(format!(
                    "no {tenants}-tenant cache-on row in the measurement or the baseline"
                )),
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_point_and_caches_pay_off() {
        let r = run_serve_bench(true);
        assert_eq!(r.rows.len(), SERVE_TENANT_POINTS.len() * 2);
        for tenants in SERVE_TENANT_POINTS {
            let on = r.row_at(tenants, true).unwrap();
            let off = r.row_at(tenants, false).unwrap();
            assert!(on.completed > 0, "{tenants} tenants completed nothing");
            assert!(on.cache_hits > 0, "{tenants} tenants never hit the cache");
            // Cache off means the cache is never consulted at all.
            assert_eq!((off.cache_hits, off.cache_misses), (0, 0));
            // A coherent cache never changes the simulated outcome.
            assert_eq!(on.completed, off.completed);
            assert_eq!(on.sim_p50_latency_us, off.sim_p50_latency_us);
            assert_eq!(on.sim_p99_latency_us, off.sim_p99_latency_us);
            // Hot-path sanity: the cache-on run plans each sub-dataset once.
            assert!(
                on.cache_misses <= SERVE_SUBDATASETS,
                "{tenants} tenants: {} misses over {} sub-datasets",
                on.cache_misses,
                SERVE_SUBDATASETS
            );
        }
    }

    #[test]
    fn simulated_fields_are_deterministic_across_runs() {
        let a = run_serve_bench(true);
        let b = run_serve_bench(true);
        // Wall-clock moves run to run; everything gated must not.
        assert!(a.gate_against(&b).is_empty(), "{:?}", a.gate_against(&b));
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!((x.tenants, x.cache), (y.tenants, y.cache));
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.cache_hits, y.cache_hits);
            assert_eq!(x.cache_misses, y.cache_misses);
            assert_eq!(x.sim_p50_latency_us, y.sim_p50_latency_us);
            assert_eq!(x.sim_p99_latency_us, y.sim_p99_latency_us);
        }
    }

    #[test]
    fn gate_flags_speedup_misses_coherence_breaks_and_baseline_drift() {
        let base = run_serve_bench(true);

        // Equal cache-on/off throughputs = 1.0x speedup, under the floor.
        let mut slow = base.clone();
        let off_qps = slow
            .rows
            .iter()
            .find(|x| x.tenants == SERVE_GATE_TENANTS && !x.cache)
            .unwrap()
            .wall_qps;
        slow.rows
            .iter_mut()
            .find(|x| x.tenants == SERVE_GATE_TENANTS && x.cache)
            .unwrap()
            .wall_qps = off_qps;
        let v = slow.gate_against(&base);
        assert!(v.iter().any(|m| m.contains("below floor")), "{v:?}");

        let mut incoherent = base.clone();
        incoherent
            .rows
            .iter_mut()
            .find(|x| x.tenants == 8 && x.cache)
            .unwrap()
            .completed += 1;
        let v = incoherent.gate_against(&base);
        assert!(
            v.iter()
                .any(|m| m.contains("cache changed the simulated outcome")),
            "{v:?}"
        );
        assert!(
            v.iter().any(|m| m.contains("drifted from baseline")),
            "{v:?}"
        );
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = run_serve_bench(true);
        let json = serde_json::to_string(&r).unwrap();
        let back: ServeBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows.len(), r.rows.len());
        assert!(back.gate_against(&r).is_empty());
    }
}
