//! The `ingest` streaming benchmark behind `BENCH_ingest.json` and the CI
//! `ingest-gate` job.
//!
//! ## Methodology (DESIGN.md §14)
//!
//! The question the gate answers: how much does *incremental* ElasticMap
//! maintenance save over the naive alternative — rebuilding the whole
//! array from scratch every time the stream reaches a commit point? Both
//! sides replay the identical arrival sequence (the paper's 256-block
//! movie dataset appended block by block) with a queryable snapshot
//! demanded every [`COMMIT_EVERY`] arrivals:
//!
//! * **rebuild**: [`ElasticMapArray::build`] over everything received so
//!   far, at every commit point — O(n²) record scans across the stream;
//! * **incremental**: one [`Ingestor::append`] per arrival plus a
//!   compaction per commit point — every record is summarized exactly
//!   once.
//!
//! As in the core bench, absolute times are machine-dependent, so the
//! gate is built on the **within-run speedup ratio** (both sides run in
//! the same process on the same workload, each timed as the minimum over
//! repetitions) against a committed baseline ± [`INGEST_GATE_TOLERANCE`],
//! plus the absolute floor [`INGEST_SPEEDUP_FLOOR`]. Ingest throughput
//! and the durable-commit (epoch persistence) time are reported for the
//! trajectory record but not gated — disk speed has no within-run
//! baseline.

use crate::setup::{movie_dataset, NODES};
use crate::table::Table;
use datanet::{ElasticMapArray, IngestConfig, Ingestor, Separation};
use datanet_dfs::Dfs;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// Separation policy used by every measurement (the paper's α = 0.3).
const ALPHA: f64 = 0.3;

/// Arrivals between commit points (both sides must produce a queryable
/// snapshot here). 16 points over the 256-block stream.
pub const COMMIT_EVERY: usize = 16;

/// Ratio tolerance of the ingest gate: current ≥ baseline × (1 − 0.20).
/// Wider than the core gate's 15% — the rebuild side's quadratic scan is
/// long enough for allocator and page-cache noise to move the ratio more.
pub const INGEST_GATE_TOLERANCE: f64 = 0.20;

/// Absolute floor for the ingest speedup (acceptance criterion): streaming
/// maintenance must beat rebuild-per-commit at least this much.
pub const INGEST_SPEEDUP_FLOOR: f64 = 3.0;

/// One `BENCH_ingest.json` measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestBenchReport {
    /// Whether the run used the shrunken `--quick` sweep.
    pub quick: bool,
    /// Blocks in the arrival sequence (paper: 256).
    pub blocks: usize,
    /// Arrivals between commit points.
    pub commit_every: usize,
    /// Raw dataset megabytes across the whole stream.
    pub raw_mb: f64,
    /// Rebuild-at-every-commit stream replay, milliseconds (min over reps).
    pub rebuild_ms: f64,
    /// Incremental ingest stream replay, milliseconds (min over reps).
    pub ingest_ms: f64,
    /// `rebuild_ms / ingest_ms` — the gated ratio.
    pub ingest_speedup: f64,
    /// Incremental-side ingest throughput over the whole stream.
    pub ingest_mb_per_s: f64,
    /// One full streaming session with durable epoch commits to disk,
    /// milliseconds (reported, not gated).
    pub commit_disk_ms: f64,
    /// Durable epochs the disk session committed.
    pub epochs: u64,
}

/// Minimum wall-seconds of `f` over `reps` repetitions.
fn min_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    best
}

/// Run the streaming-ingest benchmark. `quick` shrinks repetitions for CI
/// smoke jobs; the measured ratio keeps the same meaning.
pub fn run_ingest_bench(quick: bool) -> IngestBenchReport {
    let (dfs, catalog) = movie_dataset(NODES);
    let policy = Separation::Alpha(ALPHA);
    let reps = if quick { 2 } else { 5 };
    // Probe the hottest movie at every commit point so neither side can
    // dead-code its snapshot.
    let probe = catalog.by_size_desc()[0].0;

    // Rebuild side: from-scratch array build at every commit point.
    let rebuild = min_secs(reps, || {
        let mut live = Dfs::empty(dfs.config().clone());
        let mut touched = 0usize;
        for (k, b) in dfs.blocks().iter().enumerate() {
            live.append_block(b.records().to_vec());
            if (k + 1) % COMMIT_EVERY == 0 {
                let arr = ElasticMapArray::build(&live, &policy);
                touched += arr.view(probe).block_count();
            }
        }
        touched
    });

    // Incremental side: identical arrivals and commit points, but each
    // record is summarized exactly once.
    let cfg = IngestConfig {
        policy: policy.clone(),
        compact_every: COMMIT_EVERY,
        shard_blocks: 64,
    };
    let ingest = min_secs(reps, || {
        let mut live = Dfs::empty(dfs.config().clone());
        let mut ing = Ingestor::new(cfg.clone());
        let mut touched = 0usize;
        for (k, b) in dfs.blocks().iter().enumerate() {
            let id = live.append_block(b.records().to_vec());
            ing.append(live.block(id), k as u64);
            if (k + 1) % COMMIT_EVERY == 0 {
                ing.compact();
                touched += ing.view(probe).block_count();
            }
        }
        touched
    });

    // Disk session: one full stream with a durable epoch per commit point
    // (reported, not gated — dominated by filesystem speed).
    let disk_dir =
        std::env::temp_dir().join(format!("datanet-bench-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);
    let mut epochs = 0u64;
    let commit_disk = min_secs(1, || {
        let refs: Vec<&Path> = vec![disk_dir.as_path()];
        let mut ing = Ingestor::new(cfg.clone());
        for (k, b) in dfs.blocks().iter().enumerate() {
            ing.append(b, k as u64);
            if (k + 1) % COMMIT_EVERY == 0 {
                ing.commit(&refs).expect("bench commit");
            }
        }
        ing.commit(&refs).expect("bench commit");
        epochs = ing.stats().epochs_committed;
    });
    let _ = std::fs::remove_dir_all(&disk_dir);

    let raw_mb = dfs.total_bytes() as f64 / (1024.0 * 1024.0);
    IngestBenchReport {
        quick,
        blocks: dfs.block_count(),
        commit_every: COMMIT_EVERY,
        raw_mb,
        rebuild_ms: rebuild * 1e3,
        ingest_ms: ingest * 1e3,
        ingest_speedup: rebuild / ingest,
        ingest_mb_per_s: raw_mb / ingest,
        commit_disk_ms: commit_disk * 1e3,
        epochs,
    }
}

impl IngestBenchReport {
    /// The human-readable summary table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "== streaming ingest bench: {} blocks, {:.1} MB raw, commit every {}{} ==\n",
            self.blocks,
            self.raw_mb,
            self.commit_every,
            if self.quick { " (quick)" } else { "" }
        );
        let mut t = Table::new(["strategy", "stream (ms)", "speedup"]);
        t.row([
            "rebuild per commit".to_string(),
            format!("{:.2}", self.rebuild_ms),
            "1.00x".to_string(),
        ]);
        t.row([
            "incremental ingest".to_string(),
            format!("{:.2}", self.ingest_ms),
            format!("{:.2}x", self.ingest_speedup),
        ]);
        s.push_str(&t.render());
        s.push_str(&format!(
            "ingest throughput {:.0} MB/s; {} durable epochs in {:.2} ms\n",
            self.ingest_mb_per_s, self.epochs, self.commit_disk_ms
        ));
        s
    }

    /// Render the human-readable summary table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The ingest gate: the speedup ratio must stay within
    /// [`INGEST_GATE_TOLERANCE`] of the committed baseline *and* above the
    /// absolute floor. Returns every violated check, empty = pass.
    pub fn gate_against(&self, baseline: &IngestBenchReport) -> Vec<String> {
        let mut violations = Vec::new();
        let min_ratio = baseline.ingest_speedup * (1.0 - INGEST_GATE_TOLERANCE);
        if self.ingest_speedup < min_ratio {
            violations.push(format!(
                "ingest speedup regressed: {:.2}x vs baseline {:.2}x \
                 (tolerance floor {min_ratio:.2}x)",
                self.ingest_speedup, baseline.ingest_speedup
            ));
        }
        if self.ingest_speedup < INGEST_SPEEDUP_FLOOR {
            violations.push(format!(
                "ingest speedup below absolute floor: {:.2}x < {INGEST_SPEEDUP_FLOOR:.1}x",
                self.ingest_speedup
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(speedup: f64) -> IngestBenchReport {
        IngestBenchReport {
            quick: true,
            blocks: 256,
            commit_every: COMMIT_EVERY,
            raw_mb: 64.0,
            rebuild_ms: 100.0 * speedup,
            ingest_ms: 100.0,
            ingest_speedup: speedup,
            ingest_mb_per_s: 500.0,
            commit_disk_ms: 50.0,
            epochs: 16,
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = report(8.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: IngestBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.blocks, 256);
        assert!((back.ingest_speedup - 8.0).abs() < 1e-12);
        assert!(back.gate_against(&r).is_empty(), "identical run must pass");
    }

    #[test]
    fn gate_flags_regressions_and_floor_misses() {
        let base = report(8.0);
        // 25% below baseline: regression, but above the absolute floor.
        let v = report(6.0).gate_against(&base);
        assert_eq!(v.len(), 1, "violations: {v:?}");
        assert!(v[0].contains("regressed"), "{v:?}");
        // Below both the tolerance band and the absolute floor.
        let v = report(2.0).gate_against(&base);
        assert_eq!(v.len(), 2, "violations: {v:?}");
        assert!(v.iter().any(|m| m.contains("below absolute floor")));
        // Within tolerance passes.
        assert!(report(6.8).gate_against(&base).is_empty());
    }
}
