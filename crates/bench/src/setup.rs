//! Canonical datasets for the figure/table reproductions.

use datanet_dfs::{Dfs, DfsConfig, Topology};
use datanet_workloads::{GithubConfig, MoviesConfig};

/// Cluster size used by the paper's main experiments.
pub const NODES: u32 = 32;

/// Target block count of the movie dataset ("The total number of block
/// files is 256").
pub const MOVIE_BLOCKS: usize = 256;

/// Scaled block size: 256 kB (paper: 64 MB; scale factor 256).
pub const BLOCK_SIZE: u64 = 256 * 1024;

/// The movie-review dataset of Section V-A: chronological, Zipf popularity,
/// release-burst clustering; sized to fill ~256 blocks.
pub fn movie_dataset(nodes: u32) -> (Dfs, datanet_workloads::MovieCatalog) {
    let cfg = MoviesConfig {
        movies: 8_000,
        // 256 blocks × 256 kB ≈ 64 MB; mean review 600 B → ~112k records.
        records: (MOVIE_BLOCKS as u64 * BLOCK_SIZE / 600) as usize,
        horizon_days: 365,
        popularity_exponent: 1.1,
        // Long-tailed release burst: the hot movie spreads over ~90 blocks
        // with its peak-day block ≈ 2-3x the view mean — the Figure 1(a)
        // regime, where per-node targets span ~3-4 view blocks.
        burst_shape: 1.2,
        burst_scale_days: 25.0,
        daily_volatility: 0.7,
        background_fraction: 0.1,
        // The paper's target movie is released near the dataset start, so
        // its burst fills the first blocks (Figure 1(a)).
        hot_release_day: Some(10),
        mean_review_bytes: 600,
        seed: 0x4D4F_5649,
    };
    let (records, catalog) = cfg.generate();
    let dfs = Dfs::write_random(
        DfsConfig {
            block_size: BLOCK_SIZE,
            replication: 3,
            topology: Topology::single_rack(nodes),
            seed: 0xDA7A_0001,
        },
        records,
    );
    (dfs, catalog)
}

/// The GitHub event-log dataset of Section V-A-4 (34 GB in the paper; same
/// scale factor as the movie dataset here).
pub fn github_dataset(nodes: u32) -> Dfs {
    let cfg = GithubConfig {
        // ~256 blocks at the mean event size (~1.2 kB with the push-heavy
        // mix).
        records: (MOVIE_BLOCKS as u64 * BLOCK_SIZE / 1_200) as usize,
        horizon_days: 30,
        daily_cycle: 0.5,
        mix_jitter: 0.8,
        seed: 0x6174_4875,
    };
    let records = cfg.generate();
    Dfs::write_random(
        DfsConfig {
            block_size: BLOCK_SIZE,
            replication: 3,
            topology: Topology::single_rack(nodes),
            seed: 0xDA7A_0002,
        },
        records,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movie_dataset_has_paper_scale_shape() {
        let (dfs, catalog) = movie_dataset(NODES);
        assert!(
            (200..320).contains(&dfs.block_count()),
            "got {} blocks",
            dfs.block_count()
        );
        assert_eq!(dfs.config().replication, 3);
        // The hot movie is clustered: most of its bytes in a minority of
        // blocks.
        let hot = catalog.most_reviewed();
        let dist = dfs.subdataset_distribution(hot);
        let total: u64 = dist.iter().sum();
        let mut sorted = dist.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // ~59% of the movie sits in its top-30 blocks (release burst) while
        // a background tail keeps it present nearly everywhere — the Figure
        // 1(a) shape.
        let top30: u64 = sorted.iter().take(30).sum();
        assert!(
            top30 as f64 > 0.5 * total as f64,
            "top-30 blocks hold {top30}/{total}"
        );
        let nonzero = dist.iter().filter(|&&b| b > 0).count();
        assert!(
            nonzero as f64 > 0.85 * dist.len() as f64,
            "tail missing: {nonzero}/{} blocks nonzero",
            dist.len()
        );
    }

    #[test]
    fn github_dataset_spreads_issue_events() {
        let dfs = github_dataset(NODES);
        assert!(dfs.block_count() > 100, "got {} blocks", dfs.block_count());
        let issue = datanet_workloads::EventType::Issue.id();
        let dist = dfs.subdataset_distribution(issue);
        let nonzero = dist.iter().filter(|&&b| b > 0).count();
        assert!(
            nonzero as f64 > 0.9 * dist.len() as f64,
            "IssueEvent present in only {nonzero}/{} blocks",
            dist.len()
        );
    }
}
