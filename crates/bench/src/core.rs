//! The `core` hot-path benchmark behind `BENCH_core.json` and the CI
//! `perf-gate` job.
//!
//! ## Methodology (DESIGN.md §13)
//!
//! Absolute wall times are machine-dependent, so the gate is built on
//! **within-run speedup ratios**: every run times the frozen pre-PR-5
//! reference implementations ([`crate::legacy`]) and the current hot path
//! back to back, in one process, on the identical workload (the paper's
//! 256-block movie dataset). A slow or noisy runner slows both sides; the
//! ratio survives. Each side is timed as the *minimum over repetitions*,
//! the standard way to strip scheduler noise from a micro-measurement.
//!
//! Three ratios are gated (committed baseline ± 15%, plus absolute
//! floors): ElasticMap array build, batched multi-view query, and
//! scheduling-time planning (view assembly + Algorithm 1). Scan
//! throughput and single-view latency percentiles are reported for the
//! trajectory record but not gated — they have no within-run baseline.

use crate::legacy;
use crate::setup::{movie_dataset, NODES};
use crate::table::Table;
use datanet::{plan_balanced_batch, ElasticMapArray, Separation};
use datanet_dfs::{Dfs, SubDatasetId};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Separation policy used by every measurement (the paper's α = 0.3).
const ALPHA: f64 = 0.3;

/// Ratio tolerance of the perf gate: current ≥ baseline × (1 − 0.15).
pub const GATE_TOLERANCE: f64 = 0.15;

/// Absolute floor for the build ratio (acceptance criterion).
pub const BUILD_FLOOR: f64 = 1.5;

/// Absolute floor for the query/planner ratios (acceptance criterion).
pub const PLANNER_FLOOR: f64 = 1.3;

/// One `BENCH_core.json` measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreBenchReport {
    /// Whether the run used the shrunken `--quick` sweep.
    pub quick: bool,
    /// Blocks in the workload (paper: 256).
    pub blocks: usize,
    /// Sub-dataset ids probed by the query/planner phases.
    pub probe_ids: usize,
    /// Raw dataset megabytes scanned by one build.
    pub raw_mb: f64,
    /// Current-path scan/build throughput.
    pub scan_mb_per_s: f64,
    /// Serial legacy array build, milliseconds (min over reps).
    pub build_legacy_ms: f64,
    /// Sharded current array build, milliseconds (min over reps).
    pub build_ms: f64,
    /// `build_legacy_ms / build_ms` — the gated build ratio.
    pub build_speedup: f64,
    /// Median single-view latency on the current path, microseconds.
    pub query_p50_us: f64,
    /// 99th-percentile single-view latency, microseconds.
    pub query_p99_us: f64,
    /// Legacy per-id views vs current batched views — the gated query
    /// ratio.
    pub query_speedup: f64,
    /// Legacy view+plan loop, milliseconds (min over reps).
    pub planner_legacy_ms: f64,
    /// Batched view+plan, milliseconds (min over reps).
    pub planner_ms: f64,
    /// `planner_legacy_ms / planner_ms` — the gated planner ratio.
    pub planner_speedup: f64,
}

/// Minimum wall-seconds of `f` over `reps` repetitions.
fn min_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    best
}

/// The probe id set: every real movie interleaved from both ends of the
/// size ranking (hot head, long tail) plus one absent id per eight probes,
/// capped at `limit` — the shape of a scheduling sweep over a catalogue.
fn probe_ids(
    dfs: &Dfs,
    catalog: &datanet_workloads::MovieCatalog,
    limit: usize,
) -> Vec<SubDatasetId> {
    let ranked = catalog.by_size_desc();
    let mut ids = Vec::with_capacity(limit);
    let (mut lo, mut hi) = (0usize, ranked.len());
    while ids.len() < limit && lo < hi {
        ids.push(ranked[lo].0);
        lo += 1;
        if ids.len() % 8 == 7 {
            // An id no movie uses: exercises the all-negative bloom path.
            ids.push(SubDatasetId(u64::MAX - ids.len() as u64));
        } else if lo < hi {
            hi -= 1;
            ids.push(ranked[hi].0);
        }
    }
    ids.truncate(limit);
    assert!(dfs.block_count() > 0);
    ids
}

/// Run the core hot-path benchmark. `quick` shrinks repetitions and the
/// probe set for CI smoke jobs; the measured ratios keep the same meaning.
pub fn run_core_bench(quick: bool) -> CoreBenchReport {
    let (dfs, catalog) = movie_dataset(NODES);
    let policy = Separation::Alpha(ALPHA);
    let reps = if quick { 3 } else { 7 };
    let ids = probe_ids(&dfs, &catalog, if quick { 64 } else { 192 });

    // Build: frozen serial legacy vs current sharded build.
    let build_legacy = min_secs(reps, || legacy::build(&dfs, &policy));
    let build_new = min_secs(reps, || ElasticMapArray::build(&dfs, &policy));

    let legacy_maps = legacy::build(&dfs, &policy);
    let array = ElasticMapArray::build(&dfs, &policy);

    // Query: N legacy single views vs one batched walk.
    let query_legacy = min_secs(reps, || {
        ids.iter()
            .map(|&id| legacy::view(&legacy_maps, id))
            .collect::<Vec<_>>()
    });
    let query_new = min_secs(reps, || array.views(&ids));

    // Single-view latency distribution on the current path.
    let mut lat_us: Vec<f64> = ids
        .iter()
        .map(|&id| min_secs(reps.min(3), || array.view(id)) * 1e6)
        .collect();
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p).round() as usize];

    // Planner: per-id view+plan loop vs the batched entry point.
    let planner_legacy = min_secs(reps, || legacy::plan_balanced(&dfs, &legacy_maps, &ids));
    let planner_new = min_secs(reps, || plan_balanced_batch(&dfs, &array, &ids));

    let raw_mb = dfs.total_bytes() as f64 / (1024.0 * 1024.0);
    CoreBenchReport {
        quick,
        blocks: dfs.block_count(),
        probe_ids: ids.len(),
        raw_mb,
        scan_mb_per_s: raw_mb / build_new,
        build_legacy_ms: build_legacy * 1e3,
        build_ms: build_new * 1e3,
        build_speedup: build_legacy / build_new,
        query_p50_us: pct(0.50),
        query_p99_us: pct(0.99),
        query_speedup: query_legacy / query_new,
        planner_legacy_ms: planner_legacy * 1e3,
        planner_ms: planner_new * 1e3,
        planner_speedup: planner_legacy / planner_new,
    }
}

impl CoreBenchReport {
    /// The human-readable summary table (the CLI writes it to its own
    /// output stream; [`CoreBenchReport::print`] sends it to stdout).
    pub fn render(&self) -> String {
        let mut s = format!(
            "== core hot-path bench: {} blocks, {:.1} MB raw, {} probe ids{} ==\n",
            self.blocks,
            self.raw_mb,
            self.probe_ids,
            if self.quick { " (quick)" } else { "" }
        );
        let mut t = Table::new(["phase", "legacy (ms)", "current (ms)", "speedup"]);
        t.row([
            "build".to_string(),
            format!("{:.2}", self.build_legacy_ms),
            format!("{:.2}", self.build_ms),
            format!("{:.2}x", self.build_speedup),
        ]);
        t.row([
            "query (batched views)".to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("{:.2}x", self.query_speedup),
        ]);
        t.row([
            "planner (view+plan)".to_string(),
            format!("{:.2}", self.planner_legacy_ms),
            format!("{:.2}", self.planner_ms),
            format!("{:.2}x", self.planner_speedup),
        ]);
        s.push_str(&t.render());
        s.push_str(&format!(
            "scan throughput {:.0} MB/s; single-view latency p50 {:.1} us, p99 {:.1} us\n",
            self.scan_mb_per_s, self.query_p50_us, self.query_p99_us
        ));
        s
    }

    /// Render the human-readable summary table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The perf gate: each measured ratio must stay within
    /// [`GATE_TOLERANCE`] of the committed baseline *and* above its
    /// absolute floor. Returns every violated check, empty = pass.
    pub fn gate_against(&self, baseline: &CoreBenchReport) -> Vec<String> {
        let mut violations = Vec::new();
        let mut check = |name: &str, current: f64, base: f64, floor: f64| {
            let min_ratio = base * (1.0 - GATE_TOLERANCE);
            if current < min_ratio {
                violations.push(format!(
                    "{name} regressed: {current:.2}x vs baseline {base:.2}x \
                     (tolerance floor {min_ratio:.2}x)"
                ));
            }
            if current < floor {
                violations.push(format!(
                    "{name} below absolute floor: {current:.2}x < {floor:.1}x"
                ));
            }
        };
        check(
            "build speedup",
            self.build_speedup,
            baseline.build_speedup,
            BUILD_FLOOR,
        );
        check(
            "query speedup",
            self.query_speedup,
            baseline.query_speedup,
            PLANNER_FLOOR,
        );
        check(
            "planner speedup",
            self.planner_speedup,
            baseline.planner_speedup,
            PLANNER_FLOOR,
        );
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let r = CoreBenchReport {
            quick: true,
            blocks: 256,
            probe_ids: 64,
            raw_mb: 64.0,
            scan_mb_per_s: 100.0,
            build_legacy_ms: 30.0,
            build_ms: 10.0,
            build_speedup: 3.0,
            query_p50_us: 5.0,
            query_p99_us: 20.0,
            query_speedup: 2.0,
            planner_legacy_ms: 40.0,
            planner_ms: 20.0,
            planner_speedup: 2.0,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: CoreBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.blocks, 256);
        assert!((back.build_speedup - 3.0).abs() < 1e-12);
        assert!(back.gate_against(&r).is_empty(), "identical run must pass");
    }

    #[test]
    fn gate_flags_regressions_and_floor_misses() {
        let base = CoreBenchReport {
            quick: true,
            blocks: 256,
            probe_ids: 64,
            raw_mb: 64.0,
            scan_mb_per_s: 100.0,
            build_legacy_ms: 30.0,
            build_ms: 10.0,
            build_speedup: 3.0,
            query_p50_us: 5.0,
            query_p99_us: 20.0,
            query_speedup: 2.0,
            planner_legacy_ms: 40.0,
            planner_ms: 20.0,
            planner_speedup: 2.0,
        };
        let mut bad = base.clone();
        bad.build_speedup = 2.0; // > floor 1.5 but 33% below baseline 3.0
        bad.planner_speedup = 1.1; // below both baseline-tolerance and floor
        let v = bad.gate_against(&base);
        assert_eq!(v.len(), 3, "violations: {v:?}");
        assert!(v.iter().any(|m| m.contains("build speedup regressed")));
        assert!(v.iter().any(|m| m.contains("planner speedup regressed")));
        assert!(v.iter().any(|m| m.contains("below absolute floor")));
        // Within tolerance passes.
        let mut ok = base.clone();
        ok.build_speedup = 2.6; // 13% below 3.0 < 15% tolerance
        assert!(ok.gate_against(&base).is_empty());
    }
}
