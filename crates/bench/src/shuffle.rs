//! The `shuffle` benchmark behind `BENCH_shuffle.json` and the CI
//! `shuffle-gate` job.
//!
//! ## Methodology (DESIGN.md §17)
//!
//! The question the gate answers: how many bytes does the
//! distribution-aware reduce-side partitioner keep off the network
//! relative to classic `hash(key) % reducers` partitioning, and does that
//! win ever cost reduce makespan when there is no skew to exploit?
//!
//! The workload is the synthetic clustered matrix the paper's Section V
//! setup implies: [`KEY_RANGES`] key ranges over [`NODES`] nodes, range
//! `g`'s bytes concentrated [`HOME_FRACTION`] on its home node `g % NODES`
//! (the write-locality a real DFS produces) with the rest spread evenly,
//! and per-range totals drawn from a Zipf law at exponent `s`. The sweep
//! runs `s ∈ {0.0, 0.8, 1.2}`: uniform, moderate and heavy skew. For each
//! point both plans replay the identical matrix through
//! [`run_analysis_shuffled`] — the same simulation the pipeline executor
//! uses — so every number is a deterministic function of the workload, not
//! of wall-clock noise.
//!
//! The gate (acceptance criteria of the shuffle tentpole):
//!
//! * at `s =` [`SHUFFLE_SKEW_S`] the network-byte reduction
//!   `hash / aware` must be at least [`SHUFFLE_BYTES_FLOOR`] and within
//!   ±[`SHUFFLE_GATE_TOLERANCE`] of the committed baseline ratio;
//! * at `s =` [`SHUFFLE_UNIFORM_S`] the aware plan's makespan must be no
//!   worse than hash partitioning's — locality is only a win if it never
//!   trades away the balanced case.

use crate::table::Table;
use datanet_analytics::profiles::word_count_profile;
use datanet_dfs::NodeId;
use datanet_mapreduce::{run_analysis_shuffled, AnalysisConfig, ShufflePlan, ShufflePlanner};
use serde::{Deserialize, Serialize};

/// Reducer/mapper nodes in the synthetic cluster.
pub const NODES: usize = 8;

/// Key ranges the intermediate key space is hashed into.
pub const KEY_RANGES: usize = 64;

/// Heavy-key split threshold, in fair shares (the pipeline default).
pub const SPLIT_FACTOR: f64 = 1.25;

/// Fraction of a range's bytes sitting on its home node.
pub const HOME_FRACTION: f64 = 0.8;

/// Zipf exponent of the gated skewed point.
pub const SHUFFLE_SKEW_S: f64 = 1.2;

/// Zipf exponent of the gated uniform point.
pub const SHUFFLE_UNIFORM_S: f64 = 0.0;

/// Ratio tolerance of the shuffle gate, both directions: the measured
/// reduction must stay within ±20% of the committed baseline. The sweep is
/// deterministic, so a drift means the workload or the planner changed —
/// either way the baseline must be re-committed deliberately.
pub const SHUFFLE_GATE_TOLERANCE: f64 = 0.20;

/// Absolute floor for the network-byte reduction at the skewed point
/// (acceptance criterion): the aware plan must at least halve what
/// crosses the network.
pub const SHUFFLE_BYTES_FLOOR: f64 = 2.0;

/// One Zipf point of the sweep: both plans over the same matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShuffleBenchRow {
    /// Zipf exponent of the per-range byte distribution.
    pub zipf_s: f64,
    /// Bytes hash partitioning pushed over the network.
    pub hash_network_bytes: u64,
    /// Bytes the aware plan pushed over the network.
    pub aware_network_bytes: u64,
    /// `hash_network_bytes / aware_network_bytes` — the gated ratio.
    pub bytes_reduction: f64,
    /// Hash-plan job makespan, simulated seconds.
    pub hash_makespan_secs: f64,
    /// Aware-plan job makespan, simulated seconds.
    pub aware_makespan_secs: f64,
    /// Hash-plan reduce inflow imbalance (max / mean).
    pub hash_reduce_imbalance: f64,
    /// Aware-plan reduce inflow imbalance (max / mean).
    pub aware_reduce_imbalance: f64,
    /// Fraction of map output the aware plan kept node-local.
    pub aware_locality: f64,
    /// Key ranges the aware plan split across several reducers.
    pub split_ranges: usize,
}

/// One `BENCH_shuffle.json` measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShuffleBenchReport {
    /// Whether the run was invoked with `--quick` (the sweep is
    /// deterministic and already runs in milliseconds, so quick mode only
    /// shrinks the matrix byte totals; every ratio keeps its meaning).
    pub quick: bool,
    /// Nodes (= mappers = reducer slots).
    pub nodes: usize,
    /// Key ranges in the intermediate key space.
    pub key_ranges: usize,
    /// Split threshold, in fair shares.
    pub split_factor: f64,
    /// The Zipf sweep, ascending in `zipf_s`.
    pub rows: Vec<ShuffleBenchRow>,
}

/// Unnormalised Zipf weights `1/rank^s` for ranks `1..=k`.
fn zipf_weights(k: usize, s: f64) -> Vec<f64> {
    (1..=k).map(|i| (i as f64).powf(-s)).collect()
}

/// The synthetic clustered per-(node, key-range) matrix: Zipf range
/// totals, [`HOME_FRACTION`] of each range on node `g % nodes`, the rest
/// spread evenly (remainder bytes to the home node, keeping the matrix an
/// exact partition of `total`).
fn clustered_matrix(nodes: usize, ranges: usize, s: f64, total: u64) -> Vec<Vec<u64>> {
    let w = zipf_weights(ranges, s);
    let sum: f64 = w.iter().sum();
    let mut matrix = vec![vec![0u64; ranges]; nodes];
    for g in 0..ranges {
        let bytes = (total as f64 * w[g] / sum).round() as u64;
        let home = g % nodes;
        let foreign = ((1.0 - HOME_FRACTION) * bytes as f64) as u64;
        let each = foreign / (nodes - 1) as u64;
        for (n, row) in matrix.iter_mut().enumerate() {
            if n != home {
                row[g] = each;
            }
        }
        matrix[home][g] = bytes - each * (nodes - 1) as u64;
    }
    matrix
}

/// Run the shuffle benchmark sweep. Deterministic: identical inputs give
/// byte-identical reports, so the gate never flakes.
pub fn run_shuffle_bench(quick: bool) -> ShuffleBenchReport {
    // 256 MB of intermediate bytes (32 MB in quick mode) — enough that
    // largest-remainder rounding is invisible in every ratio.
    let total: u64 = if quick { 32 << 20 } else { 256 << 20 };
    let job = word_count_profile();
    let cfg = AnalysisConfig::default();
    let mut rows = Vec::new();
    for s in [SHUFFLE_UNIFORM_S, 0.8, SHUFFLE_SKEW_S] {
        let matrix = clustered_matrix(NODES, KEY_RANGES, s, total);
        let aware_plan = ShufflePlanner::new(SPLIT_FACTOR).plan(&matrix);
        let hash_plan = ShufflePlan::hash(KEY_RANGES, (0..NODES as u32).map(NodeId).collect());
        let aware = run_analysis_shuffled(&matrix, &job, &cfg, &aware_plan);
        let hash = run_analysis_shuffled(&matrix, &job, &cfg, &hash_plan);
        rows.push(ShuffleBenchRow {
            zipf_s: s,
            hash_network_bytes: hash.network_bytes,
            aware_network_bytes: aware.network_bytes,
            bytes_reduction: hash.network_bytes as f64 / aware.network_bytes.max(1) as f64,
            hash_makespan_secs: hash.report.makespan_secs,
            aware_makespan_secs: aware.report.makespan_secs,
            hash_reduce_imbalance: hash.reduce_imbalance(),
            aware_reduce_imbalance: aware.reduce_imbalance(),
            aware_locality: aware.locality_fraction(),
            split_ranges: aware_plan
                .assignments
                .iter()
                .filter(|frags| frags.len() > 1)
                .count(),
        });
    }
    ShuffleBenchReport {
        quick,
        nodes: NODES,
        key_ranges: KEY_RANGES,
        split_factor: SPLIT_FACTOR,
        rows,
    }
}

impl ShuffleBenchReport {
    /// The row at a given Zipf exponent (the sweep is tiny; exact float
    /// match is fine because both sides construct `s` from the same
    /// constants).
    fn row_at(&self, s: f64) -> Option<&ShuffleBenchRow> {
        self.rows.iter().find(|r| r.zipf_s == s)
    }

    /// The human-readable summary table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "== distribution-aware shuffle bench: {} nodes, {} key ranges, \
             split factor {:.2}{} ==\n",
            self.nodes,
            self.key_ranges,
            self.split_factor,
            if self.quick { " (quick)" } else { "" }
        );
        let mut t = Table::new([
            "zipf s",
            "hash net MB",
            "aware net MB",
            "reduction",
            "hash mkspan",
            "aware mkspan",
            "locality",
            "splits",
        ]);
        for r in &self.rows {
            t.row([
                format!("{:.1}", r.zipf_s),
                format!("{:.1}", r.hash_network_bytes as f64 / (1 << 20) as f64),
                format!("{:.1}", r.aware_network_bytes as f64 / (1 << 20) as f64),
                format!("{:.2}x", r.bytes_reduction),
                format!("{:.3}s", r.hash_makespan_secs),
                format!("{:.3}s", r.aware_makespan_secs),
                format!("{:.0}%", 100.0 * r.aware_locality),
                r.split_ranges.to_string(),
            ]);
        }
        s.push_str(&t.render());
        s
    }

    /// Render the human-readable summary table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The shuffle gate. Returns every violated check, empty = pass.
    pub fn gate_against(&self, baseline: &ShuffleBenchReport) -> Vec<String> {
        let mut violations = Vec::new();
        match (self.row_at(SHUFFLE_SKEW_S), baseline.row_at(SHUFFLE_SKEW_S)) {
            (Some(cur), Some(base)) => {
                if cur.bytes_reduction < SHUFFLE_BYTES_FLOOR {
                    violations.push(format!(
                        "shuffle-byte reduction below absolute floor at s={SHUFFLE_SKEW_S}: \
                         {:.2}x < {SHUFFLE_BYTES_FLOOR:.1}x",
                        cur.bytes_reduction
                    ));
                }
                let lo = base.bytes_reduction * (1.0 - SHUFFLE_GATE_TOLERANCE);
                let hi = base.bytes_reduction * (1.0 + SHUFFLE_GATE_TOLERANCE);
                if cur.bytes_reduction < lo || cur.bytes_reduction > hi {
                    violations.push(format!(
                        "shuffle-byte reduction drifted at s={SHUFFLE_SKEW_S}: {:.2}x vs \
                         baseline {:.2}x (band {lo:.2}x..{hi:.2}x) — re-commit the baseline \
                         if the workload or planner changed deliberately",
                        cur.bytes_reduction, base.bytes_reduction
                    ));
                }
            }
            _ => violations.push(format!(
                "no s={SHUFFLE_SKEW_S} row in the measurement or the baseline"
            )),
        }
        match self.row_at(SHUFFLE_UNIFORM_S) {
            Some(cur) => {
                if cur.aware_makespan_secs > cur.hash_makespan_secs {
                    violations.push(format!(
                        "aware makespan worse than hash on the uniform workload \
                         (s={SHUFFLE_UNIFORM_S}): {:.4}s > {:.4}s",
                        cur.aware_makespan_secs, cur.hash_makespan_secs
                    ));
                }
            }
            None => violations.push(format!("no s={SHUFFLE_UNIFORM_S} row in the measurement")),
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_partitions_the_total_exactly() {
        for s in [0.0, 0.8, 1.2] {
            let m = clustered_matrix(NODES, KEY_RANGES, s, 1 << 20);
            for g in 0..KEY_RANGES {
                let col: u64 = m.iter().map(|row| row[g]).sum();
                let home = m[g % NODES][g];
                assert!(
                    home as f64 >= HOME_FRACTION * col as f64,
                    "s={s} range {g}: home holds {home} of {col}"
                );
            }
        }
    }

    #[test]
    fn sweep_is_deterministic_and_passes_its_own_gate() {
        let a = run_shuffle_bench(true);
        let b = run_shuffle_bench(true);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "two identical sweeps diverged"
        );
        assert!(a.gate_against(&b).is_empty(), "{:?}", a.gate_against(&b));
    }

    #[test]
    fn skewed_point_clears_the_floor_and_splits_heavy_ranges() {
        let r = run_shuffle_bench(true);
        let skew = r.row_at(SHUFFLE_SKEW_S).unwrap();
        assert!(
            skew.bytes_reduction >= SHUFFLE_BYTES_FLOOR,
            "reduction {:.2}x under the floor",
            skew.bytes_reduction
        );
        assert!(skew.split_ranges > 0, "no heavy range split at s=1.2");
        let uniform = r.row_at(SHUFFLE_UNIFORM_S).unwrap();
        assert!(uniform.aware_makespan_secs <= uniform.hash_makespan_secs);
        assert!(
            uniform.aware_reduce_imbalance <= uniform.hash_reduce_imbalance + 1e-9,
            "aware {:.3} vs hash {:.3}",
            uniform.aware_reduce_imbalance,
            uniform.hash_reduce_imbalance
        );
    }

    #[test]
    fn gate_flags_floor_misses_drift_and_makespan_regressions() {
        let base = run_shuffle_bench(true);
        let mut bad = base.clone();
        {
            let skew = bad
                .rows
                .iter_mut()
                .find(|r| r.zipf_s == SHUFFLE_SKEW_S)
                .unwrap();
            skew.bytes_reduction = 1.5; // under the floor AND out of band
        }
        let v = bad.gate_against(&base);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("absolute floor")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("drifted")), "{v:?}");

        let mut slow = base.clone();
        {
            let uniform = slow
                .rows
                .iter_mut()
                .find(|r| r.zipf_s == SHUFFLE_UNIFORM_S)
                .unwrap();
            uniform.aware_makespan_secs = uniform.hash_makespan_secs * 2.0;
        }
        let v = slow.gate_against(&base);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("makespan worse"), "{v:?}");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = run_shuffle_bench(true);
        let json = serde_json::to_string(&r).unwrap();
        let back: ShuffleBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows.len(), r.rows.len());
        assert!(back.gate_against(&r).is_empty());
    }
}
