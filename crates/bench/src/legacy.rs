//! Frozen pre-optimisation reference implementations of the metadata hot
//! path, used by the `core` bench as the **within-run baseline**.
//!
//! `BENCH_core.json` reports speedup *ratios* (legacy time ÷ current time
//! measured in the same process, same workload, same compiler), so the
//! perf gate is machine-independent: a slow CI runner slows both sides
//! equally. The structures here reproduce the PR 2–4 hot path exactly:
//!
//! * SipHash `HashMap` bucket accounting (vs the interned `FastMap`),
//! * a `HashMap`-backed ElasticMap exact side (vs sorted parallel arrays),
//! * a flat Bloom bit layout probing `k` scattered cache lines per query
//!   (vs the cache-line-blocked layout),
//! * one full array walk per sub-dataset view (vs the batched merge-join).
//!
//! Keep this module frozen: it only changes if a bug made the historical
//! behaviour unrepresentative.

use datanet::{Assignment, Buckets, Separation, SizeInfo, SubDatasetView};
use datanet_dfs::{Block, BlockId, Dfs, NodeId, SubDatasetId};
use std::collections::HashMap;

/// Design false-positive rate (same as the current path).
const BLOOM_EPSILON: f64 = 0.01;

/// The pre-blocking Bloom filter: one `% num_bits` probe per hash, `k`
/// potentially distinct cache lines touched per query.
pub struct LegacyBloom {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
}

impl LegacyBloom {
    pub fn with_rate(expected_items: usize, fpr: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let bits = (-(n * fpr.ln()) / (2f64.ln() * 2f64.ln())).ceil().max(8.0);
        let k = ((bits / n) * 2f64.ln()).round().clamp(1.0, 30.0) as u32;
        let num_bits = bits as u64;
        Self {
            bits: vec![0; num_bits.div_ceil(64) as usize],
            num_bits,
            num_hashes: k,
        }
    }

    fn hash_pair(id: SubDatasetId) -> (u64, u64) {
        // SplitMix64, identical constants to `datanet::BloomFilter`.
        let mut z = id.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let h1 = z ^ (z >> 31);
        let mut w = h1.wrapping_add(0xD1B5_4A32_D192_ED03);
        w = (w ^ (w >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        w = (w ^ (w >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (h1, (w ^ (w >> 31)) | 1)
    }

    pub fn insert(&mut self, id: SubDatasetId) {
        let (h1, h2) = Self::hash_pair(id);
        for i in 0..u64::from(self.num_hashes) {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    pub fn contains(&self, id: SubDatasetId) -> bool {
        let (h1, h2) = Self::hash_pair(id);
        (0..u64::from(self.num_hashes)).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }
}

/// The pre-interning per-block map: SipHash `HashMap` exact side, flat
/// bloom tail, one hash probe per query.
pub struct LegacyElasticMap {
    block: BlockId,
    exact: HashMap<SubDatasetId, u64>,
    bloom: LegacyBloom,
    threshold: u64,
    bloom_min_bytes: Option<u64>,
}

impl LegacyElasticMap {
    /// The PR 2 build: SipHash bucket accounting, then the α split.
    pub fn build(block: &Block, policy: &Separation) -> Self {
        let base = if block.is_empty() {
            1024
        } else {
            (block.bytes() / block.len() as u64).max(1)
        };
        let buckets = Buckets::fibonacci(base, 9);
        let mut sizes: HashMap<SubDatasetId, u64> = HashMap::new();
        let mut counts = vec![0usize; buckets.len()];
        for r in block.records() {
            let entry = sizes.entry(r.subdataset).or_insert(0);
            let old = *entry;
            *entry = old.saturating_add(r.size as u64);
            let new_bucket = buckets.bucket_of(*entry);
            if old == 0 {
                counts[new_bucket] += 1;
            } else {
                let old_bucket = buckets.bucket_of(old);
                if old_bucket != new_bucket {
                    counts[old_bucket] -= 1;
                    counts[new_bucket] += 1;
                }
            }
        }
        let distinct = sizes.len();
        let threshold = match policy {
            Separation::Alpha(alpha) => {
                let quota = (*alpha * distinct as f64).ceil() as usize;
                // The top-down bucket walk, exactly as
                // `BucketCounter::dominance_threshold` does it.
                if quota == 0 {
                    u64::MAX
                } else {
                    let mut taken = 0;
                    let mut t = 0;
                    for i in (0..buckets.len()).rev() {
                        taken += counts[i];
                        if taken >= quota {
                            t = buckets.lower_bound(i);
                            break;
                        }
                    }
                    t
                }
            }
            Separation::Threshold { min_bytes } => *min_bytes,
            Separation::All => 0,
            Separation::BloomOnly => u64::MAX,
        };
        let bloom_count = sizes.values().filter(|&&s| s < threshold).count();
        let mut bloom = LegacyBloom::with_rate(bloom_count.max(1), BLOOM_EPSILON);
        let mut exact = HashMap::new();
        let mut bloom_min_bytes: Option<u64> = None;
        for (id, size) in sizes {
            if size >= threshold {
                exact.insert(id, size);
            } else {
                bloom.insert(id);
                bloom_min_bytes = Some(bloom_min_bytes.map_or(size, |m: u64| m.min(size)));
            }
        }
        Self {
            block: block.id(),
            exact,
            bloom,
            threshold,
            bloom_min_bytes,
        }
    }

    pub fn query(&self, id: SubDatasetId) -> SizeInfo {
        if let Some(&size) = self.exact.get(&id) {
            SizeInfo::Exact(size)
        } else if self.bloom.contains(id) {
            SizeInfo::Approximate
        } else {
            SizeInfo::Absent
        }
    }

    fn bloom_delta_hint(&self) -> u64 {
        self.bloom_min_bytes
            .unwrap_or(if self.threshold == u64::MAX {
                0
            } else {
                self.threshold
            })
    }
}

/// The pre-sharding serial array build.
pub fn build(dfs: &Dfs, policy: &Separation) -> Vec<LegacyElasticMap> {
    dfs.blocks()
        .iter()
        .map(|b| LegacyElasticMap::build(b, policy))
        .collect()
}

/// The pre-batching view assembly: one full array walk per sub-dataset.
pub fn view(maps: &[LegacyElasticMap], s: SubDatasetId) -> SubDatasetView {
    let mut exact = Vec::new();
    let mut bloom = Vec::new();
    let mut delta_hint = u64::MAX;
    for m in maps {
        match m.query(s) {
            SizeInfo::Exact(sz) => exact.push((m.block, sz)),
            SizeInfo::Approximate => {
                bloom.push(m.block);
                delta_hint = delta_hint.min(m.bloom_delta_hint());
            }
            SizeInfo::Absent => {}
        }
    }
    SubDatasetView::new(s, exact, bloom, delta_hint)
}

/// The pre-indexing bipartite graph: `heaviest`/`lightest` answered by a
/// full scan over every block the NameNode knows, per task request — the
/// PR 4 planner hot path, frozen.
struct LegacyGraph {
    adj_node: Vec<Vec<BlockId>>,
    holders: Vec<Option<Vec<NodeId>>>,
    weight: Vec<u64>,
    remaining: usize,
}

impl LegacyGraph {
    fn from_view(dfs: &Dfs, v: &SubDatasetView) -> Self {
        let nn = dfs.namenode();
        let total = nn.block_count();
        let mut holders: Vec<Option<Vec<NodeId>>> = vec![None; total];
        let mut weight = vec![0u64; total];
        let mut adj_node = vec![Vec::new(); nn.node_count()];
        let mut remaining = 0;
        for b in v.blocks() {
            let nodes = nn.replicas(b).to_vec();
            for &n in &nodes {
                adj_node[n.index()].push(b);
            }
            holders[b.index()] = Some(nodes);
            weight[b.index()] = v.weight(b);
            remaining += 1;
        }
        Self {
            adj_node,
            holders,
            weight,
            remaining,
        }
    }

    fn contains(&self, b: BlockId) -> bool {
        self.holders[b.index()].is_some()
    }

    fn local_blocks(&self, n: NodeId) -> impl Iterator<Item = BlockId> + '_ {
        self.adj_node[n.index()]
            .iter()
            .copied()
            .filter(|&b| self.contains(b))
    }

    fn remaining_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.holders
            .iter()
            .enumerate()
            .filter(|(_, h)| h.is_some())
            .map(|(i, _)| BlockId(i as u32))
    }

    fn remove(&mut self, b: BlockId) {
        self.holders[b.index()] = None;
        self.remaining -= 1;
    }
}

/// The pre-indexing Algorithm 1 (paced-greedy policy only, no fault
/// hooks): semantically identical picks to the current planner, but every
/// global candidate is found by rescanning all blocks.
fn legacy_plan_one(dfs: &Dfs, v: &SubDatasetView) -> Assignment {
    let mut graph = LegacyGraph::from_view(dfs, v);
    let m = dfs.namenode().node_count();
    let target = v.estimated_total() as f64 / m as f64;
    let mut workloads = vec![0u64; m];
    let mut assignment = Assignment::new(m);
    let largest_fit = |g: &LegacyGraph,
                       w: &[u64],
                       node: NodeId,
                       cands: &mut dyn Iterator<Item = BlockId>|
     -> Option<BlockId> {
        let headroom = (target - w[node.index()] as f64).max(0.0);
        cands
            .map(|b| (g.weight[b.index()], b))
            .filter(|&(wt, _)| wt as f64 <= headroom)
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(_, b)| b)
    };
    while graph.remaining > 0 {
        let node = NodeId(
            (0..m)
                .min_by(|&a, &b| {
                    let rel = |i: usize| {
                        if target > 0.0 {
                            workloads[i] as f64 / target
                        } else {
                            workloads[i] as f64
                        }
                    };
                    rel(a).partial_cmp(&rel(b)).unwrap().then(a.cmp(&b))
                })
                .unwrap() as u32,
        );
        let global_heaviest = graph
            .remaining_blocks()
            .map(|b| (graph.weight[b.index()], b))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(_, b)| b);
        let local_fit = largest_fit(&graph, &workloads, node, &mut graph.local_blocks(node));
        let global_fit = largest_fit(&graph, &workloads, node, &mut global_heaviest.into_iter());
        let my_headroom = target - workloads[node.index()] as f64;
        let rescue = global_fit.filter(|&g| {
            let beats_local =
                local_fit.is_none_or(|l| graph.weight[g.index()] > graph.weight[l.index()]);
            beats_local
                && graph.holders[g.index()]
                    .as_ref()
                    .unwrap()
                    .iter()
                    .all(|h| *h != node && target - (workloads[h.index()] as f64) < my_headroom)
        });
        let (block, local) = if let Some(b) = rescue.or(local_fit).or(global_fit) {
            let local = graph.holders[b.index()].as_ref().unwrap().contains(&node);
            (b, local)
        } else {
            let light = |cands: &mut dyn Iterator<Item = BlockId>| {
                cands
                    .map(|b| (graph.weight[b.index()], b))
                    .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)))
                    .map(|(_, b)| b)
            };
            let light_local = light(&mut graph.local_blocks(node));
            let light_global = light(&mut graph.remaining_blocks()).unwrap();
            match light_local {
                Some(l)
                    if graph.weight[l.index()]
                        <= graph.weight[light_global.index()].saturating_mul(4) =>
                {
                    (l, true)
                }
                _ => (light_global, false),
            }
        };
        let w = graph.weight[block.index()];
        workloads[node.index()] += w;
        graph.remove(block);
        assignment.assign(node, block, w, local);
    }
    assignment
}

/// The pre-batching planner loop: view + plan, one array walk per id and
/// one full-block scan per task request.
pub fn plan_balanced(
    dfs: &Dfs,
    maps: &[LegacyElasticMap],
    ids: &[SubDatasetId],
) -> Vec<Assignment> {
    ids.iter()
        .map(|&id| legacy_plan_one(dfs, &view(maps, id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet::ElasticMapArray;
    use datanet_dfs::{DfsConfig, Record, Topology};

    /// The legacy reference must agree with the current implementation on
    /// semantics (same exact sizes, no false negatives) — only the data
    /// layout and constant factors differ.
    #[test]
    fn legacy_reference_semantically_matches_current() {
        let recs = (0..4000u64).map(|i| Record::new(SubDatasetId(i % 80), i, 100, i));
        let dfs = Dfs::write_random(
            DfsConfig {
                block_size: 20_000,
                replication: 2,
                topology: Topology::single_rack(4),
                seed: 3,
            },
            recs,
        );
        let policy = Separation::Alpha(0.3);
        let old = build(&dfs, &policy);
        let new = ElasticMapArray::build(&dfs, &policy);
        assert_eq!(old.len(), new.len());
        for (m_old, m_new) in old.iter().zip(new.maps()) {
            for s in 0..100u64 {
                let (a, b) = (m_old.query(SubDatasetId(s)), m_new.query(SubDatasetId(s)));
                match (a, b) {
                    // Exact answers must agree exactly.
                    (SizeInfo::Exact(x), SizeInfo::Exact(y)) => assert_eq!(x, y),
                    // Bloom sides may differ only in false positives.
                    (SizeInfo::Exact(_), _) | (_, SizeInfo::Exact(_)) => {
                        panic!("exact/approx split diverged for {s}: {a:?} vs {b:?}")
                    }
                    _ => {}
                }
            }
        }
        // Views built from both agree on the exact side and δ.
        for s in [0u64, 7, 42] {
            let v_old = view(&old, SubDatasetId(s));
            let v_new = new.view(SubDatasetId(s));
            assert_eq!(v_old.exact(), v_new.exact());
            assert_eq!(v_old.delta(), v_new.delta());
        }
    }

    /// The frozen planner and the current (indexed) planner must make
    /// identical picks on identical views — the speedup is allowed to come
    /// only from data-structure work, never from changed plans.
    #[test]
    fn legacy_planner_plans_identically_to_current() {
        let recs =
            (0..6000u64).map(|i| Record::new(SubDatasetId(i % 37), i, 90 + (i % 5) as u32 * 30, i));
        let dfs = Dfs::write_random(
            DfsConfig {
                block_size: 15_000,
                replication: 3,
                topology: Topology::single_rack(8),
                seed: 9,
            },
            recs,
        );
        let array = ElasticMapArray::build(&dfs, &Separation::Alpha(0.4));
        for s in 0..37u64 {
            let v = array.view(SubDatasetId(s));
            let frozen = legacy_plan_one(&dfs, &v);
            let current = datanet::Algorithm1::new(&dfs, &v).plan_balanced();
            assert_eq!(frozen, current, "plans diverged for sub-dataset {s}");
        }
    }
}
