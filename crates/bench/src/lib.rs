//! Shared scaffolding for the reproduction harness: canonical experiment
//! datasets (scaled versions of the paper's setups) and table-printing
//! helpers used by the `fig*`/`table*` binaries.
//!
//! ## Scaling
//!
//! The paper stores 256 × 64 MB blocks on 32–128 Marmot nodes. This harness
//! keeps the *block count*, *node count*, *replication* and all
//! distributional parameters, and scales the block size down to 256 kB so a
//! full figure regenerates in seconds on a laptop. The simulator's outputs
//! are ratios of byte quantities over hardware rates, so every comparative
//! claim (who wins, by what factor, where the crossover sits) is preserved;
//! absolute seconds are not comparable to the paper's testbed and are not
//! meant to be.

pub mod core;
pub mod ingest;
pub mod legacy;
pub mod serve;
pub mod setup;
pub mod shuffle;
pub mod table;

pub use core::{run_core_bench, CoreBenchReport};
pub use ingest::{run_ingest_bench, IngestBenchReport};
pub use serve::{run_serve_bench, ServeBenchReport};
pub use setup::{github_dataset, movie_dataset, MOVIE_BLOCKS, NODES};
pub use shuffle::{run_shuffle_bench, ShuffleBenchReport};
pub use table::Table;

/// Whether the binary was invoked with `--quick`: CI smoke mode. Binaries
/// shrink their sweeps (fewer seeds, smaller clusters, fewer rows) so every
/// figure exercises its full code path in a couple of seconds.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}
