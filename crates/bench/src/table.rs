//! Minimal aligned-table printer for the reproduction binaries.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1"]);
        t.row(["longer", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("x"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }
}
