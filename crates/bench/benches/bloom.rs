//! Microbenchmarks for the Bloom filter: insert and query throughput at the
//! paper's design point (ε = 1%, ≈10 bits per element).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datanet::BloomFilter;
use datanet_dfs::SubDatasetId;

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom_insert");
    for &n in &[1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut f = BloomFilter::with_rate(n, 0.01);
                for i in 0..n as u64 {
                    f.insert(SubDatasetId(black_box(i)));
                }
                f
            });
        });
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let n = 100_000usize;
    let mut f = BloomFilter::with_rate(n, 0.01);
    for i in 0..n as u64 {
        f.insert(SubDatasetId(i));
    }
    c.bench_function("bloom_query_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % n as u64;
            black_box(f.contains(SubDatasetId(i)))
        });
    });
    c.bench_function("bloom_query_miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(f.contains(SubDatasetId(n as u64 + i)))
        });
    });
}

criterion_group!(benches, bench_insert, bench_query);
criterion_main!(benches);
