//! The paper's complexity claim (Section III-B): bucket-based dominant
//! separation is O(m) versus O(m log m) for the sort-based alternative.
//! This bench pits the two against each other at growing sub-dataset
//! counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datanet::{BucketCounter, Buckets};
use datanet_dfs::SubDatasetId;

/// Synthetic per-sub-dataset sizes with heavy skew.
fn sizes(m: usize) -> Vec<(SubDatasetId, u64)> {
    (0..m as u64)
        .map(|i| {
            let z = (i.wrapping_mul(2_654_435_761)) % 1_000;
            let size = if z < 10 { 40_000 + z * 100 } else { 100 + z };
            (SubDatasetId(i), size)
        })
        .collect()
}

fn bucket_separation(data: &[(SubDatasetId, u64)], quota: usize) -> u64 {
    let mut c = BucketCounter::new(Buckets::paper());
    for &(id, s) in data {
        c.record(id, s);
    }
    c.dominance_threshold(quota)
}

fn sort_separation(data: &[(SubDatasetId, u64)], quota: usize) -> u64 {
    // Like the bucket method, the sort baseline must first aggregate the
    // record stream into per-sub-dataset sizes; the difference under test
    // is the O(m log m) sort vs the O(m) bucket walk that follows.
    let mut sizes = std::collections::HashMap::new();
    for &(id, s) in data {
        *sizes.entry(id).or_insert(0u64) += s;
    }
    let mut sorted: Vec<u64> = sizes.into_values().collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    sorted[quota.min(sorted.len()) - 1]
}

fn bench_separation(c: &mut Criterion) {
    let mut g = c.benchmark_group("dominant_separation");
    for &m in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let data = sizes(m);
        let quota = m / 10;
        g.bench_with_input(BenchmarkId::new("buckets", m), &data, |b, data| {
            b.iter(|| bucket_separation(black_box(data), quota));
        });
        g.bench_with_input(BenchmarkId::new("sort", m), &data, |b, data| {
            b.iter(|| sort_separation(black_box(data), quota));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_separation);
criterion_main!(benches);
