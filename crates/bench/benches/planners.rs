//! Planning cost of the three distribution-aware strategies. The paper's
//! pitch is that DataNet's scheduling is cheap enough to run before every
//! job; this bench quantifies that for Algorithm 1 (both policies) and the
//! Ford–Fulkerson planner.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datanet::planner::BalancePolicy;
use datanet::{Algorithm1, ElasticMapArray, FordFulkersonPlanner, Separation};
use datanet_bench::movie_dataset;

fn bench_planners(c: &mut Criterion) {
    let (dfs, catalog) = movie_dataset(32);
    let hot = catalog.most_reviewed();
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let mut g = c.benchmark_group("planners");
    g.sample_size(20);
    g.bench_function("algorithm1_paced", |b| {
        b.iter(|| {
            Algorithm1::with_policy(dfs.namenode(), black_box(&view), BalancePolicy::PacedGreedy)
                .plan_balanced()
        });
    });
    g.bench_function("algorithm1_best_fit", |b| {
        b.iter(|| {
            Algorithm1::with_policy(
                dfs.namenode(),
                black_box(&view),
                BalancePolicy::BestFitTerminal,
            )
            .plan_balanced()
        });
    });
    g.bench_function("ford_fulkerson", |b| {
        b.iter(|| FordFulkersonPlanner::new(&dfs, black_box(&view)).plan());
    });
    g.finish();
}

criterion_group!(benches, bench_planners);
criterion_main!(benches);
