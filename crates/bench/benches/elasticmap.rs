//! ElasticMap build and query cost across separation policies, and the
//! memory trade-off that motivates it: an all-hash-map layout is the
//! baseline; the α-split buys memory at a small query-time cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datanet::{ElasticMap, Separation};
use datanet_dfs::{Block, BlockId, Record, SubDatasetId};

/// A block with `distinct` sub-datasets of Zipf-ish sizes.
fn synth_block(records: usize, distinct: u64) -> Block {
    let recs = (0..records as u64)
        .map(|i| {
            // Quadratic map concentrates records on low ids.
            let r = (i * i * 2_654_435_761) % (distinct * distinct);
            let s = ((r as f64).sqrt() as u64).min(distinct - 1);
            Record::new(SubDatasetId(s), i, 200 + (i % 800) as u32, i)
        })
        .collect();
    Block::new(BlockId(0), recs)
}

fn bench_build(c: &mut Criterion) {
    let block = synth_block(20_000, 2_000);
    let mut g = c.benchmark_group("elasticmap_build");
    for (name, sep) in [
        ("all_hashmap", Separation::All),
        ("alpha_0.3", Separation::Alpha(0.3)),
        ("bloom_only", Separation::BloomOnly),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &sep, |b, sep| {
            b.iter(|| ElasticMap::build(black_box(&block), sep));
        });
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let block = synth_block(20_000, 2_000);
    let map = ElasticMap::build(&block, &Separation::Alpha(0.3));
    c.bench_function("elasticmap_query", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 4_000; // mix of present and absent ids
            black_box(map.query(SubDatasetId(i)))
        });
    });
}

fn bench_memory_report(c: &mut Criterion) {
    // Not a hot path, but keeps the memory accounting itself cheap.
    let block = synth_block(20_000, 2_000);
    let map = ElasticMap::build(&block, &Separation::Alpha(0.3));
    c.bench_function("elasticmap_memory_bytes", |b| {
        b.iter(|| black_box(map.memory_bytes()));
    });
}

criterion_group!(benches, bench_build, bench_query, bench_memory_report);
criterion_main!(benches);
