//! Meta-data construction throughput: the single scan over all blocks,
//! sequential vs Rayon-parallel (per-block ElasticMaps are independent, so
//! the scan should scale with cores).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datanet::{ElasticMapArray, Separation};
use datanet_bench::movie_dataset;

fn bench_scan(c: &mut Criterion) {
    let (dfs, _) = movie_dataset(32);
    let mut g = c.benchmark_group("elasticmap_array_build");
    g.sample_size(20);
    g.bench_function("sequential", |b| {
        b.iter(|| ElasticMapArray::build_sequential(black_box(&dfs), &Separation::Alpha(0.3)));
    });
    g.bench_function("parallel", |b| {
        b.iter(|| ElasticMapArray::build(black_box(&dfs), &Separation::Alpha(0.3)));
    });
    g.finish();
}

fn bench_view(c: &mut Criterion) {
    let (dfs, catalog) = movie_dataset(32);
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let hot = catalog.most_reviewed();
    c.bench_function("view_hot_subdataset", |b| {
        b.iter(|| black_box(arr.view(hot)));
    });
}

criterion_group!(benches, bench_scan, bench_view);
criterion_main!(benches);
