//! Real (Rayon) job execution over balanced vs imbalanced partitions — the
//! DataNet effect demonstrated on actual CPU work rather than the
//! simulator: with the same total records, balanced partitions finish
//! measurably sooner because no worker straggles.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datanet_analytics::jobs::{TopKSearch, WordCount};
use datanet_analytics::LocalExecutor;
use datanet_dfs::{Record, SubDatasetId};

/// `total` records split into `parts` partitions; `skew` = fraction of all
/// records crammed into partition 0.
fn partitions(total: usize, parts: usize, skew: f64) -> Vec<Vec<Record>> {
    let first = (total as f64 * skew) as usize;
    let rest = (total - first) / (parts - 1);
    let mut out = Vec::with_capacity(parts);
    let mut seed = 0u64;
    let mut make = |n: usize| -> Vec<Record> {
        (0..n)
            .map(|_| {
                seed += 1;
                Record::new(SubDatasetId(0), seed, 600, seed)
            })
            .collect()
    };
    out.push(make(first));
    for _ in 1..parts {
        out.push(make(rest));
    }
    out
}

fn bench_wordcount(c: &mut Criterion) {
    let balanced = partitions(40_000, 8, 1.0 / 8.0);
    let skewed = partitions(40_000, 8, 0.5);
    let mut g = c.benchmark_group("real_wordcount");
    g.sample_size(10);
    g.bench_function("balanced", |b| {
        b.iter(|| LocalExecutor.execute(&WordCount, black_box(&balanced)));
    });
    g.bench_function("skewed", |b| {
        b.iter(|| LocalExecutor.execute(&WordCount, black_box(&skewed)));
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let balanced = partitions(2_000, 8, 1.0 / 8.0);
    let skewed = partitions(2_000, 8, 0.5);
    let job = TopKSearch::default();
    let mut g = c.benchmark_group("real_topk");
    g.sample_size(10);
    g.bench_function("balanced", |b| {
        b.iter(|| LocalExecutor.execute(&job, black_box(&balanced)));
    });
    g.bench_function("skewed", |b| {
        b.iter(|| LocalExecutor.execute(&job, black_box(&skewed)));
    });
    g.finish();
}

criterion_group!(benches, bench_wordcount, bench_topk);
criterion_main!(benches);
