//! Composable, checkpointed analytics pipelines.
//!
//! A [`Pipeline`] is an ordered `seq` of typed stages over a *working
//! state* (a record set plus its aggregates):
//!
//! * [`StageOp::Filter`] — start the working set from one sub-dataset,
//! * [`StageOp::Append`] — union in another sub-dataset's records,
//! * [`StageOp::Join`] — semi-join: keep records sharing an event time with
//!   another sub-dataset,
//! * [`StageOp::Aggregate`] — run one of the paper's four jobs over the
//!   working set,
//! * [`StageOp::Output`] — finalize and name the result.
//!
//! Every data stage's input sub-dataset is planned **distribution-aware**
//! through the existing schedulers: healthy metadata plans through
//! Algorithm 1 ([`DataNetScheduler`]); unhealthy metadata falls down the
//! degradation ladder to a [`ResilientScheduler`] over the degraded view.
//! Node crashes, slow windows and detector suspicion are priced by the
//! fault engine (`run_selection_faulty_traced`, with its `node_lost`
//! re-planning and shared retry budget), and each stage stamps its own
//! [`FaultStats`]/[`ObsSummary`] into the report. The *data plane* is
//! computed from DFS ground truth — the simulation prices the stage, it
//! does not corrupt its output — which is what makes resume-equivalence
//! exact.
//!
//! After each stage the working state is committed as a checksummed,
//! epoch-stamped checkpoint ([`datanet::checkpoint`]) under the PR 6
//! crash-safe write order: payload → immutable per-stage manifest (carrying
//! `last_completed_operation`) → live pipeline manifest LAST. A crash after
//! any write prefix leaves the previous stage durable; [`Pipeline::resume`]
//! restores the newest durable state and re-plans only the surviving
//! stages against the surviving cluster.

use crate::jobs::{AggregateHistogram, MovingAverage, RecordJob, TopKSearch, WordCount};
use crate::profiles::{
    histogram_profile, moving_average_profile, top_k_profile, word_count_profile,
};
use datanet::checkpoint::{self, CheckpointPlan};
use datanet::{ElasticMapArray, MetaStore, RetryPolicy, StoreError};
use datanet_dfs::{Dfs, Record, SubDatasetId};
use datanet_mapreduce::{
    key_range_of, range_matrix_truth, run_analysis_shuffled_traced, run_analysis_surviving_traced,
    run_analysis_traced, run_selection_faulty_traced, run_selection_traced, AnalysisConfig,
    DataNetScheduler, FaultConfig, FaultStats, JobProfile, MapScheduler, ResilientScheduler,
    SelectionConfig, SelectionOutcome, ShufflePlan, ShufflePlanner,
};
use datanet_obs::{Category, Domain, FlightKind, ObsSummary, Recorder, SpanCtx};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeSet;
use std::path::Path;

/// One of the paper's four Table II jobs, usable as an aggregate stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AggJob {
    /// Word count over record payloads.
    WordCount,
    /// Moving average with the given window (seconds).
    MovingAverage(u64),
    /// Aggregate word histogram.
    Histogram,
    /// Top-K similarity search against the default query sequence.
    TopK,
}

impl AggJob {
    /// The engine cost profile pricing this job's analysis phase.
    pub fn profile(&self) -> JobProfile {
        match self {
            AggJob::WordCount => word_count_profile(),
            AggJob::MovingAverage(_) => moving_average_profile(),
            AggJob::Histogram => histogram_profile(),
            AggJob::TopK => top_k_profile(),
        }
    }

    fn job(&self) -> Box<dyn RecordJob> {
        match self {
            AggJob::WordCount => Box::new(WordCount),
            AggJob::MovingAverage(w) => Box::new(MovingAverage { window_secs: *w }),
            AggJob::Histogram => Box::new(AggregateHistogram),
            AggJob::TopK => Box::new(TopKSearch::default()),
        }
    }

    /// Human-readable job name (also stamped into stage labels).
    pub fn label(&self) -> &'static str {
        match self {
            AggJob::WordCount => "word-count",
            AggJob::MovingAverage(_) => "moving-average",
            AggJob::Histogram => "histogram",
            AggJob::TopK => "top-k",
        }
    }

    /// Deterministic map → reduce over the working set: keys are
    /// accumulated in sorted order, so the same records always produce the
    /// same aggregate list, bit for bit.
    pub fn run(&self, records: &[Record]) -> Vec<KeyValue> {
        let job = self.job();
        let mut acc: std::collections::BTreeMap<u64, Vec<f64>> = std::collections::BTreeMap::new();
        for r in records {
            job.map(r, &mut |k, v| acc.entry(k).or_default().push(v));
        }
        acc.into_iter()
            .map(|(key, vs)| KeyValue {
                key,
                value: job.reduce(key, &vs),
            })
            .collect()
    }

    /// Partition this job's map output into per-reducer fragments under a
    /// [`ShufflePlan`]: every emitted pair is stamped with its global
    /// emission sequence number and routed by key range (split ranges pick
    /// a fragment deterministically via [`ShufflePlan::fragment_slot`]).
    /// One fragment per reducer slot, empty slots included.
    pub fn map_fragments(&self, records: &[Record], plan: &ShufflePlan) -> Vec<ShuffleFragment> {
        let job = self.job();
        let ranges = plan.key_ranges();
        let mut frags: Vec<ShuffleFragment> = (0..plan.reducers.len())
            .map(|reducer| ShuffleFragment {
                reducer,
                entries: Vec::new(),
            })
            .collect();
        let mut seq = 0u64;
        for r in records {
            job.map(r, &mut |k, v| {
                let slot = plan.fragment_slot(key_range_of(k, ranges), seq);
                frags[slot].entries.push((k, seq, v));
                seq += 1;
            });
        }
        frags
    }

    /// Deterministic merge of shuffled fragments: values regroup by key and
    /// re-sort by emission sequence number before reducing, so the output
    /// is byte-identical to [`AggJob::run`] regardless of how the key space
    /// was partitioned, how heavy keys were split, or in which order the
    /// fragments arrive.
    pub fn merge_fragments(&self, frags: &[ShuffleFragment]) -> Vec<KeyValue> {
        let job = self.job();
        let mut acc: std::collections::BTreeMap<u64, Vec<(u64, f64)>> =
            std::collections::BTreeMap::new();
        for f in frags {
            for &(k, s, v) in &f.entries {
                acc.entry(k).or_default().push((s, v));
            }
        }
        acc.into_iter()
            .map(|(key, mut vs)| {
                vs.sort_unstable_by_key(|&(s, _)| s);
                let values: Vec<f64> = vs.into_iter().map(|(_, v)| v).collect();
                KeyValue {
                    key,
                    value: job.reduce(key, &values),
                }
            })
            .collect()
    }

    /// [`AggJob::run`] routed through `plan`'s partitioning — provably the
    /// same output (the property the `split-merge-equivalence` oracle and
    /// `tests/shuffle.rs` pin down).
    pub fn run_routed(&self, records: &[Record], plan: &ShufflePlan) -> Vec<KeyValue> {
        self.merge_fragments(&self.map_fragments(records, plan))
    }
}

/// One reducer's slice of a shuffled map output: `(key, emission sequence,
/// value)` triples. The sequence numbers are what make the merge
/// order-insensitive — any arrival permutation of the fragments reduces
/// identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ShuffleFragment {
    /// Reducer slot this fragment belongs to.
    pub reducer: usize,
    /// Emitted `(key, seq, value)` triples, in emission order.
    pub entries: Vec<(u64, u64, f64)>,
}

/// One typed pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageOp {
    /// Replace the working set with one sub-dataset's records.
    Filter(u64),
    /// Union another sub-dataset's records into the working set.
    Append(u64),
    /// Semi-join: keep working records whose timestamp also occurs in the
    /// given sub-dataset (shared event time ⇒ related activity).
    Join(u64),
    /// Aggregate the working set with one of the four jobs.
    Aggregate(AggJob),
    /// Finalize the result under a name.
    Output(String),
}

impl StageOp {
    /// Human-readable stage label, also stamped into checkpoint manifests.
    pub fn label(&self) -> String {
        match self {
            StageOp::Filter(s) => format!("filter(s={s})"),
            StageOp::Append(s) => format!("append(s={s})"),
            StageOp::Join(s) => format!("join(s={s})"),
            StageOp::Aggregate(j) => format!("aggregate({})", j.label()),
            StageOp::Output(name) => format!("output({name})"),
        }
    }

    /// The sub-dataset this stage reads from the DFS, if any.
    pub fn subdataset(&self) -> Option<SubDatasetId> {
        match self {
            StageOp::Filter(s) | StageOp::Append(s) | StageOp::Join(s) => Some(SubDatasetId(*s)),
            _ => None,
        }
    }
}

/// An ordered stage sequence with a name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Pipeline name (stamped into every checkpoint manifest; resume
    /// refuses a store written by a differently-named pipeline).
    pub name: String,
    /// The stages, executed in order.
    pub seq: Vec<StageOp>,
}

/// WordCount as a stage graph: filter → aggregate → output.
pub fn word_count_pipeline(s: SubDatasetId) -> PipelineSpec {
    PipelineSpec {
        name: "word-count".into(),
        seq: vec![
            StageOp::Filter(s.0),
            StageOp::Aggregate(AggJob::WordCount),
            StageOp::Output("word-count".into()),
        ],
    }
}

/// Moving Average as a stage graph: filter → aggregate(window) → output.
pub fn moving_average_pipeline(s: SubDatasetId, window_secs: u64) -> PipelineSpec {
    PipelineSpec {
        name: "moving-average".into(),
        seq: vec![
            StageOp::Filter(s.0),
            StageOp::Aggregate(AggJob::MovingAverage(window_secs)),
            StageOp::Output("moving-average".into()),
        ],
    }
}

/// Aggregate Histogram as a stage graph: filter → aggregate → output.
pub fn histogram_pipeline(s: SubDatasetId) -> PipelineSpec {
    PipelineSpec {
        name: "histogram".into(),
        seq: vec![
            StageOp::Filter(s.0),
            StageOp::Aggregate(AggJob::Histogram),
            StageOp::Output("histogram".into()),
        ],
    }
}

/// Top-K Search as a stage graph: filter → aggregate → output.
pub fn top_k_pipeline(s: SubDatasetId) -> PipelineSpec {
    PipelineSpec {
        name: "top-k".into(),
        seq: vec![
            StageOp::Filter(s.0),
            StageOp::Aggregate(AggJob::TopK),
            StageOp::Output("top-k".into()),
        ],
    }
}

/// A multi-stage composite: filter one sub-dataset, join against a second,
/// then count words over the correlated records.
pub fn join_word_count_pipeline(a: SubDatasetId, b: SubDatasetId) -> PipelineSpec {
    PipelineSpec {
        name: "join-word-count".into(),
        seq: vec![
            StageOp::Filter(a.0),
            StageOp::Join(b.0),
            StageOp::Aggregate(AggJob::WordCount),
            StageOp::Output("join-word-count".into()),
        ],
    }
}

/// One reduced key/value pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyValue {
    /// Intermediate key.
    pub key: u64,
    /// Reduced value.
    pub value: f64,
}

/// The data flowing between stages: the current record set and the latest
/// aggregates. This is exactly what a checkpoint persists.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkingState {
    /// Records in DFS block order (deterministic across runs).
    pub records: Vec<Record>,
    /// Aggregates from the most recent [`StageOp::Aggregate`] stage.
    pub aggregates: Vec<KeyValue>,
}

impl WorkingState {
    fn payload(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("working state serialization is infallible")
    }
}

/// Where stage planning reads its metadata from.
pub enum MetaPlane<'a> {
    /// In-memory ElasticMap array: always healthy, rung-1 views.
    Array(&'a ElasticMapArray),
    /// Replicated MetaStore: planning goes through [`MetaStore::view_degraded`]
    /// and falls down the degradation ladder when shards are unhealthy.
    Store(&'a mut MetaStore),
}

impl MetaPlane<'_> {
    /// A scheduler for `s` plus `(unknown_blocks, healthy)` rung info.
    fn scheduler_for(&mut self, dfs: &Dfs, s: SubDatasetId) -> (Box<dyn MapScheduler>, u64, bool) {
        match self {
            MetaPlane::Array(arr) => {
                let view = arr.view(s);
                (Box::new(DataNetScheduler::new(dfs, &view)), 0, true)
            }
            MetaPlane::Store(store) => {
                let deg = store.view_degraded(s);
                let unknown = deg.unknown_blocks().len() as u64;
                if deg.is_healthy() {
                    (Box::new(DataNetScheduler::new(dfs, deg.view())), 0, true)
                } else {
                    (Box::new(ResilientScheduler::new(dfs, &deg)), unknown, false)
                }
            }
        }
    }
}

/// Everything a pipeline run needs besides the spec and the checkpoint
/// directories.
pub struct PipelineEnv<'a> {
    /// The dataset.
    pub dfs: &'a Dfs,
    /// Metadata plane stage planning reads from.
    pub meta: MetaPlane<'a>,
    /// `Some` prices every stage under the scripted fault plan (crashes,
    /// slow windows, detector suspicion — each stage restarts the sim clock
    /// at zero against the same plan).
    pub faults: Option<FaultConfig>,
    /// Selection-phase cost model.
    pub selection: SelectionConfig,
    /// Analysis-phase cost model.
    pub analysis: AnalysisConfig,
    /// Bounded-retry policy for checkpoint commits (shared with the
    /// MetaStore failover reads and the engine budget — `datanet::retry`).
    pub retry: RetryPolicy,
    /// Seed for the deterministic backoff jitter of checkpoint retries.
    pub retry_seed: u64,
    /// `Some` prices every healthy aggregate stage through the
    /// distribution-aware shuffle partitioner (or its hash baseline) and
    /// routes the data plane through the split/merge path — which is
    /// answer-preserving, so the report's `data_fingerprint` is identical
    /// to a `None` run. Faulty stages keep the surviving-uniform layout.
    pub shuffle: Option<ShuffleParams>,
}

/// How aggregate stages shuffle when the distribution-aware partitioner is
/// enabled ([`PipelineEnv::shuffle`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShuffleParams {
    /// Key ranges the intermediate key space is hashed into.
    pub key_ranges: usize,
    /// Fair-share multiplier above which a key range splits across
    /// reducers (≥ 1).
    pub split_factor: f64,
    /// `true` plans from the data distribution; `false` uses the classic
    /// `hash(range) % reducers` baseline — the A/B the CLI exposes.
    pub aware: bool,
}

impl Default for ShuffleParams {
    fn default() -> Self {
        Self {
            key_ranges: 32,
            split_factor: 1.25,
            aware: true,
        }
    }
}

impl<'a> PipelineEnv<'a> {
    /// Defaults: healthy metadata from `arr`, no faults, default cost
    /// models and retry policy.
    pub fn new(dfs: &'a Dfs, arr: &'a ElasticMapArray) -> Self {
        Self {
            dfs,
            meta: MetaPlane::Array(arr),
            faults: None,
            selection: SelectionConfig::default(),
            analysis: AnalysisConfig::default(),
            retry: RetryPolicy::default(),
            retry_seed: 0,
            shuffle: None,
        }
    }
}

/// Per-stage entry of the pipeline report.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage index in the spec (also its checkpoint epoch).
    pub index: u64,
    /// Stage label.
    pub label: String,
    /// Records entering the stage.
    pub records_in: u64,
    /// Records leaving the stage.
    pub records_out: u64,
    /// Aggregates leaving the stage.
    pub aggregates_out: u64,
    /// Ground-truth bytes of the stage's input sub-dataset (0 for
    /// aggregate/output stages).
    pub input_bytes: u64,
    /// Blocks planned through the rung-3 locality fallback because the
    /// metadata shards were unhealthy.
    pub unknown_blocks: u64,
    /// Did planning fall down the degradation ladder?
    pub degraded: bool,
    /// Simulated stage duration, seconds.
    pub sim_secs: f64,
    /// CRC-32 of the stage's checkpoint payload.
    pub checkpoint_crc: u32,
    /// Checkpoint write attempts beyond the first.
    pub checkpoint_retries: u32,
    /// Fault accounting for this stage's simulated execution.
    pub faults: FaultStats,
    /// Per-stage observability summary (`None` when the recorder is off).
    pub obs: Option<ObsSummary>,
}

// Hand-written so a recorder-off run serializes without an `obs` key and
// stays byte-identical to pre-observability output (same idiom as
// `ExecutionReport`; the vendored serde derive has no `skip_serializing_if`).
impl Serialize for StageReport {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("index".to_string(), self.index.to_value()),
            ("label".to_string(), self.label.to_value()),
            ("records_in".to_string(), self.records_in.to_value()),
            ("records_out".to_string(), self.records_out.to_value()),
            ("aggregates_out".to_string(), self.aggregates_out.to_value()),
            ("input_bytes".to_string(), self.input_bytes.to_value()),
            ("unknown_blocks".to_string(), self.unknown_blocks.to_value()),
            ("degraded".to_string(), self.degraded.to_value()),
            ("sim_secs".to_string(), self.sim_secs.to_value()),
            ("checkpoint_crc".to_string(), self.checkpoint_crc.to_value()),
            (
                "checkpoint_retries".to_string(),
                self.checkpoint_retries.to_value(),
            ),
            ("faults".to_string(), self.faults.to_value()),
        ];
        if let Some(obs) = &self.obs {
            entries.push(("obs".to_string(), obs.to_value()));
        }
        Value::Object(entries)
    }
}

/// The pipeline's final data product.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PipelineOutput {
    /// Final working-set record count.
    pub records: u64,
    /// Final aggregates.
    pub aggregates: Vec<KeyValue>,
    /// CRC-32 of the canonical serialized final working state — the
    /// byte-level identity the resume-equivalence oracle compares.
    pub digest: u32,
}

impl PipelineOutput {
    fn from_state(state: &WorkingState) -> Self {
        Self {
            records: state.records.len() as u64,
            aggregates: state.aggregates.clone(),
            digest: checkpoint::content_crc(&state.payload()),
        }
    }
}

/// Report of one pipeline run (uninterrupted or resumed).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PipelineReport {
    /// Pipeline name.
    pub pipeline: String,
    /// `Some(k)` when this run resumed after durable stage `k` (its
    /// reports cover only the re-executed stages).
    pub resumed_from: Option<u64>,
    /// Reports for the stages this run executed.
    pub stages: Vec<StageReport>,
    /// The final data product.
    pub output: PipelineOutput,
}

impl PipelineReport {
    /// Canonical JSON of everything that must be byte-identical between an
    /// uninterrupted run and any crash + resume: the pipeline identity and
    /// its data output. Timing, `FaultStats` and `obs` are excluded by
    /// construction; the full per-stage equivalence is checked against the
    /// durable checkpoint ledger ([`checkpoint::ledger`]).
    pub fn data_fingerprint(&self) -> String {
        let v = Value::Object(vec![
            ("pipeline".to_string(), self.pipeline.to_value()),
            ("output".to_string(), self.output.to_value()),
        ]);
        serde_json::to_string(&v).expect("fingerprint serialization is infallible")
    }
}

/// Where a scripted crash strikes: during stage `stage`'s checkpoint
/// commit, after `write_prefix % (writes + 1)` of its ordered writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Stage whose checkpoint the crash interrupts.
    pub stage: usize,
    /// Raw write-prefix selector (taken modulo `writes + 1`).
    pub write_prefix: u64,
}

/// What a scripted crash left behind ([`Pipeline::run_interrupted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptedRun {
    /// Stage the crash interrupted.
    pub crash_stage: usize,
    /// Ordered writes of that stage's checkpoint that landed before the
    /// crash (all of them ⇒ the stage is durable after all).
    pub applied_writes: usize,
    /// Total writes the interrupted checkpoint plan had.
    pub plan_writes: usize,
}

enum RunOutcome {
    Completed(PipelineReport),
    Crashed(InterruptedRun),
}

/// A validated, executable pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    spec: PipelineSpec,
}

impl Pipeline {
    /// Validate and wrap a spec.
    ///
    /// # Panics
    /// Panics if the spec is empty or does not begin with a
    /// [`StageOp::Filter`] (every later stage needs a working set).
    pub fn new(spec: PipelineSpec) -> Self {
        assert!(!spec.seq.is_empty(), "pipeline needs at least one stage");
        assert!(
            matches!(spec.seq[0], StageOp::Filter(_)),
            "pipelines start with a filter stage"
        );
        Self { spec }
    }

    /// The validated spec.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.spec.seq.len()
    }

    /// Never true — `new` rejects empty specs; included for idiom.
    pub fn is_empty(&self) -> bool {
        self.spec.seq.is_empty()
    }

    /// Run every stage from scratch, checkpointing each into `dirs`.
    ///
    /// # Errors
    /// Checkpoint IO failures (after the bounded retries are exhausted).
    pub fn run(
        &self,
        env: &mut PipelineEnv,
        dirs: &[&Path],
        rec: &Recorder,
    ) -> Result<PipelineReport, StoreError> {
        match self.exec(env, dirs, 0, WorkingState::default(), None, None, rec)? {
            RunOutcome::Completed(r) => Ok(r),
            RunOutcome::Crashed(_) => unreachable!("no crash was scripted"),
        }
    }

    /// Resume from the last durable checkpoint in `dirs`: restore its
    /// working state, then execute only the remaining stages against the
    /// *current* cluster and metadata plane. Directories with no durable
    /// checkpoint (crashed before the first commit) start a fresh run.
    ///
    /// # Errors
    /// Corrupt/mismatched checkpoints, or checkpoint IO failures.
    pub fn resume(
        &self,
        env: &mut PipelineEnv,
        dirs: &[&Path],
        rec: &Recorder,
    ) -> Result<PipelineReport, StoreError> {
        let Some((manifest, payload)) = checkpoint::resume(dirs)? else {
            return self.run(env, dirs, rec);
        };
        if manifest.pipeline != self.spec.name {
            return Err(StoreError::Corrupt {
                path: dirs.first().map(|d| d.to_path_buf()).unwrap_or_default(),
                detail: format!(
                    "checkpoint belongs to pipeline `{}`, not `{}`",
                    manifest.pipeline, self.spec.name
                ),
            });
        }
        let last = manifest.last_completed_operation as usize;
        if last >= self.len() {
            return Err(StoreError::Corrupt {
                path: dirs.first().map(|d| d.to_path_buf()).unwrap_or_default(),
                detail: format!(
                    "checkpoint stage {last} is beyond the {}-stage pipeline",
                    self.len()
                ),
            });
        }
        let state: WorkingState =
            serde_json::from_slice(&payload).map_err(|e| StoreError::Corrupt {
                path: dirs.first().map(|d| d.to_path_buf()).unwrap_or_default(),
                detail: format!("checkpoint payload does not decode: {e}"),
            })?;
        match self.exec(env, dirs, last + 1, state, Some(last as u64), None, rec)? {
            RunOutcome::Completed(r) => Ok(r),
            RunOutcome::Crashed(_) => unreachable!("no crash was scripted"),
        }
    }

    /// Run with a scripted crash: stages before `crash.stage` commit
    /// normally; that stage executes but its checkpoint stops after a
    /// prefix of its ordered writes, modeling a node dying mid-commit.
    ///
    /// # Errors
    /// Checkpoint IO failures.
    ///
    /// # Panics
    /// Panics if `crash.stage` is out of range.
    pub fn run_interrupted(
        &self,
        env: &mut PipelineEnv,
        dirs: &[&Path],
        crash: CrashPoint,
        rec: &Recorder,
    ) -> Result<InterruptedRun, StoreError> {
        assert!(crash.stage < self.len(), "crash stage out of range");
        match self.exec(
            env,
            dirs,
            0,
            WorkingState::default(),
            None,
            Some(crash),
            rec,
        )? {
            RunOutcome::Crashed(i) => Ok(i),
            RunOutcome::Completed(_) => unreachable!("crash stage is in range"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec(
        &self,
        env: &mut PipelineEnv,
        dirs: &[&Path],
        start: usize,
        mut state: WorkingState,
        resumed_from: Option<u64>,
        crash: Option<CrashPoint>,
        rec: &Recorder,
    ) -> Result<RunOutcome, StoreError> {
        let mut stages = Vec::new();
        let mut last_selection: Option<SelectionOutcome> = None;
        let mut last_sub: Option<SubDatasetId> = None;
        for (i, op) in self.spec.seq.iter().enumerate().skip(start) {
            let label = op.label();
            // Per-stage recorder: the stage's ObsSummary must cover exactly
            // this stage's spans, so each stage records into its own trace
            // buffer (enabled iff the caller's recorder is) while sharing
            // the run-wide metrics registry, flight ring and query scope.
            let stage_rec = rec.fork_trace();
            let records_in = state.records.len() as u64;
            let mut input_bytes = 0u64;
            let mut unknown_blocks = 0u64;
            let mut degraded = false;
            let mut sim_secs = 0.0f64;
            let mut faults = FaultStats::default();

            match op {
                StageOp::Filter(_) | StageOp::Append(_) | StageOp::Join(_) => {
                    let s = op.subdataset().expect("data stages name a sub-dataset");
                    let outcome = self.plan_data_stage(env, s, &stage_rec);
                    input_bytes = env.dfs.subdataset_total(s);
                    unknown_blocks = outcome.1;
                    degraded = !outcome.2;
                    let outcome = outcome.0;
                    sim_secs = outcome.end.as_secs_f64();
                    faults = outcome.faults.clone();
                    let incoming = subdataset_records(env.dfs, s);
                    match op {
                        StageOp::Filter(_) => state.records = incoming,
                        StageOp::Append(_) => state.records.extend(incoming),
                        StageOp::Join(_) => {
                            let keys: BTreeSet<u64> =
                                incoming.iter().map(|r| r.timestamp).collect();
                            state.records.retain(|r| keys.contains(&r.timestamp));
                        }
                        _ => unreachable!(),
                    }
                    // The record set changed: any previous aggregates
                    // describe a working set that no longer exists.
                    state.aggregates.clear();
                    last_selection = Some(outcome);
                    last_sub = Some(s);
                }
                StageOp::Aggregate(job) => {
                    // Resume may land directly on an aggregate stage; the
                    // partitions its analysis phase prices then come from
                    // re-planning the latest *surviving* data stage against
                    // the current cluster.
                    if last_selection.is_none() {
                        let j = self.spec.seq[..i]
                            .iter()
                            .rposition(|o| o.subdataset().is_some())
                            .expect("specs start with a filter stage");
                        let s = self.spec.seq[j].subdataset().expect("data stage");
                        let replan = self.plan_data_stage(env, s, &stage_rec);
                        unknown_blocks = replan.1;
                        degraded = !replan.2;
                        last_selection = Some(replan.0);
                        last_sub = Some(s);
                    }
                    let sel = last_selection.as_ref().expect("selection planned above");
                    let profile = job.profile();
                    let mut routed: Option<ShufflePlan> = None;
                    let report = if env.faults.is_some() {
                        let mut alive = vec![true; sel.per_node_bytes.len()];
                        for &n in &sel.faults.crashed_nodes {
                            alive[n] = false;
                        }
                        run_analysis_surviving_traced(
                            &sel.per_node_bytes,
                            &profile,
                            &env.analysis,
                            &alive,
                            sel.end,
                            &stage_rec,
                        )
                    } else if let Some(p) = env.shuffle {
                        // Distribution-aware (or hash-baseline) shuffle:
                        // price the stage on the per-(node, key-range)
                        // matrix of the stage's input sub-dataset and route
                        // the data plane through the same plan. The merge
                        // is answer-preserving, so only placement and bytes
                        // change — never the aggregates.
                        let s = last_sub.expect("aggregate follows a data stage");
                        let matrix = range_matrix_truth(env.dfs, s, p.key_ranges);
                        let plan = if p.aware {
                            ShufflePlanner::new(p.split_factor).plan(&matrix)
                        } else {
                            ShufflePlan::hash(
                                p.key_ranges,
                                (0..matrix.len() as u32).map(datanet_dfs::NodeId).collect(),
                            )
                        };
                        let out = run_analysis_shuffled_traced(
                            &matrix,
                            &profile,
                            &env.analysis,
                            &plan,
                            sel.end,
                            &stage_rec,
                        );
                        routed = Some(plan);
                        out.report
                    } else {
                        run_analysis_traced(
                            &sel.per_node_bytes,
                            &profile,
                            &env.analysis,
                            sel.end,
                            &stage_rec,
                        )
                    };
                    sim_secs = report.makespan_secs;
                    faults = sel.faults.clone();
                    state.aggregates = match &routed {
                        Some(plan) => job.run_routed(&state.records, plan),
                        None => job.run(&state.records),
                    };
                }
                StageOp::Output(_) => {}
            }

            // Commit the checkpoint (crash-safe write order; bounded
            // retries with deterministic jitter).
            let plan = CheckpointPlan::new(&self.spec.name, i as u64, &label, state.payload());
            let checkpoint_crc = plan.manifest().payload_crc;
            if let Some(cp) = crash {
                if cp.stage == i {
                    let applied = (cp.write_prefix % (plan.writes() as u64 + 1)) as usize;
                    plan.apply_prefix(dirs, applied)?;
                    return Ok(RunOutcome::Crashed(InterruptedRun {
                        crash_stage: i,
                        applied_writes: applied,
                        plan_writes: plan.writes(),
                    }));
                }
            }
            let span = rec.begin(
                Category::Checkpoint,
                "commit",
                Domain::Wall,
                rec.wall_us(),
                SpanCtx::default().note(label.clone()),
            );
            let mut checkpoint_retries = 0u32;
            loop {
                match plan.apply(dirs) {
                    Ok(()) => break,
                    Err(_) if checkpoint_retries + 1 < env.retry.attempts_per_replica => {
                        checkpoint_retries += 1;
                        rec.flight(
                            FlightKind::Retry,
                            Domain::Wall,
                            rec.wall_us(),
                            None,
                            format!("checkpoint commit retry {checkpoint_retries} for stage {i} ({label})"),
                        );
                        std::thread::sleep(
                            env.retry
                                .backoff_jittered(checkpoint_retries, env.retry_seed ^ i as u64),
                        );
                    }
                    Err(e) => {
                        rec.end_with_note(span, rec.wall_us(), "failed");
                        return Err(e);
                    }
                }
            }
            rec.end(span, rec.wall_us());

            let obs = if stage_rec.is_enabled() {
                Some(stage_rec.take().summary(None))
            } else {
                None
            };
            stages.push(StageReport {
                index: i as u64,
                label,
                records_in,
                records_out: state.records.len() as u64,
                aggregates_out: state.aggregates.len() as u64,
                input_bytes,
                unknown_blocks,
                degraded,
                sim_secs,
                checkpoint_crc,
                checkpoint_retries,
                faults,
                obs,
            });
        }
        Ok(RunOutcome::Completed(PipelineReport {
            pipeline: self.spec.name.clone(),
            resumed_from,
            stages,
            output: PipelineOutput::from_state(&state),
        }))
    }

    /// Plan one data stage distribution-aware: scheduler from the metadata
    /// plane (down the degradation ladder if unhealthy), priced by the
    /// fault engine when faults are configured. Returns
    /// `(outcome, unknown_blocks, healthy)`.
    fn plan_data_stage(
        &self,
        env: &mut PipelineEnv,
        s: SubDatasetId,
        rec: &Recorder,
    ) -> (SelectionOutcome, u64, bool) {
        let truth = env.dfs.subdataset_distribution(s);
        let (mut sched, unknown, healthy) = env.meta.scheduler_for(env.dfs, s);
        let outcome = match &env.faults {
            Some(fc) => run_selection_faulty_traced(
                env.dfs,
                &truth,
                sched.as_mut(),
                &env.selection,
                fc,
                rec,
            ),
            None => run_selection_traced(env.dfs, &truth, sched.as_mut(), &env.selection, rec),
        };
        (outcome, unknown, healthy)
    }
}

/// All records of `s` in DFS block order — the canonical record order every
/// run (and every resume) observes.
fn subdataset_records(dfs: &Dfs, s: SubDatasetId) -> Vec<Record> {
    let mut out = Vec::new();
    for b in dfs.blocks() {
        out.extend(b.filter(s).copied());
    }
    out
}
