//! The sub-dataset analysis applications of Section V, plus extensions.
//!
//! Each of the paper's four MapReduce jobs exists in two forms:
//!
//! * a **cost profile** ([`profiles`]) consumed by the simulated engine in
//!   `datanet-mapreduce` (used for the Figure 5–7 reproductions), and
//! * a **real implementation** ([`jobs`], [`executor`]) that maps and
//!   reduces actual records under Rayon — one worker per virtual node — so
//!   the imbalance effects can also be observed as genuine wall-clock skew
//!   on the machine running the benchmarks.
//!
//! [`session`] (user sessionization) and [`flows`] (network-flow
//! construction) implement the two motivating analyses from the paper's
//! introduction as additional sub-dataset applications.

pub mod executor;
pub mod flows;
pub mod jobs;
pub mod pipeline;
pub mod profiles;
pub mod session;

pub use executor::{partitions_from_assignment, LocalExecutor, LocalRunReport};
pub use jobs::{
    AggregateHistogram, MovingAverage, RecordJob, TopKCollector, TopKSearch, WordCount,
};
pub use pipeline::{
    histogram_pipeline, join_word_count_pipeline, moving_average_pipeline, top_k_pipeline,
    word_count_pipeline, AggJob, CrashPoint, InterruptedRun, KeyValue, MetaPlane, Pipeline,
    PipelineEnv, PipelineOutput, PipelineReport, PipelineSpec, ShuffleFragment, ShuffleParams,
    StageOp, StageReport, WorkingState,
};
pub use profiles::{histogram_profile, moving_average_profile, top_k_profile, word_count_profile};
