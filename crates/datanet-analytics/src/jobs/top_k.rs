//! Top-K Search — "finding K sequences with the most similarity to a given
//! sequence. This algorithm needs heavy computation due to the similarity
//! comparison between sequences."

use crate::jobs::RecordJob;
use crate::profiles::top_k_profile;
use datanet_dfs::Record;
use datanet_mapreduce::JobProfile;

/// Finds the records whose token sequences are most similar to a query
/// sequence. Similarity is normalised longest-common-subsequence length —
/// quadratic in the sequence length, which is what makes this job
/// compute-bound.
#[derive(Debug, Clone)]
pub struct TopKSearch {
    /// The query sequence.
    pub query: Vec<u32>,
    /// Token alphabet size used when materialising record sequences.
    pub alphabet: u32,
    /// Sequence length per record.
    pub seq_len: usize,
    /// Similarity quantisation for the intermediate key space.
    pub buckets: u64,
}

impl Default for TopKSearch {
    fn default() -> Self {
        Self {
            query: (0..64).map(|i| i % 4).collect(),
            alphabet: 4,
            seq_len: 64,
            buckets: 1000,
        }
    }
}

impl TopKSearch {
    /// Normalised LCS similarity in `[0, 1]` between two sequences.
    /// O(|a|·|b|) dynamic program — the deliberate compute hot spot.
    pub fn similarity(a: &[u32], b: &[u32]) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        // Two-row DP to keep memory linear.
        let mut prev = vec![0u32; b.len() + 1];
        let mut curr = vec![0u32; b.len() + 1];
        for &x in a {
            for (j, &y) in b.iter().enumerate() {
                curr[j + 1] = if x == y {
                    prev[j] + 1
                } else {
                    prev[j + 1].max(curr[j])
                };
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[b.len()] as f64 / a.len().max(b.len()) as f64
    }

    /// Similarity of one record to the query.
    pub fn record_similarity(&self, record: &Record) -> f64 {
        let seq = record.payload().sequence(self.seq_len, self.alphabet);
        Self::similarity(&seq, &self.query)
    }
}

impl RecordJob for TopKSearch {
    fn name(&self) -> &str {
        "TopKSearch"
    }

    fn profile(&self) -> JobProfile {
        top_k_profile()
    }

    /// Emits `(quantised similarity, 1)`: the reduce side then reads off
    /// the highest non-empty buckets to recover the top-K set.
    fn map(&self, record: &Record, emit: &mut dyn FnMut(u64, f64)) {
        let sim = self.record_similarity(record);
        let bucket = (sim * (self.buckets - 1) as f64).round() as u64;
        emit(bucket, 1.0);
    }

    fn reduce(&self, _key: u64, values: &[f64]) -> f64 {
        values.iter().sum()
    }

    /// Counting is associative: partial sums combine losslessly.
    fn combine(&self, _key: u64, values: &[f64]) -> Option<Vec<f64>> {
        Some(vec![values.iter().sum()])
    }
}

/// Streaming collector for the actual top-K records (not just the
/// histogram the MapReduce path produces): keeps the K highest-similarity
/// `(similarity, record seed)` pairs seen so far in a min-heap.
#[derive(Debug, Clone)]
pub struct TopKCollector {
    k: usize,
    /// Min-heap over (quantised similarity, seed): the root is the weakest
    /// member, evicted when something better arrives.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
}

impl TopKCollector {
    /// Collector for the best `k` records.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k needs k >= 1");
        Self {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer one record's similarity (quantised to keep ordering total).
    pub fn offer(&mut self, similarity: f64, seed: u64) {
        debug_assert!((0.0..=1.0).contains(&similarity));
        let quantised = (similarity * 1e9) as u64;
        self.heap.push(std::cmp::Reverse((quantised, seed)));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// Merge another collector (for per-partition parallel collection).
    pub fn merge(&mut self, other: TopKCollector) {
        for std::cmp::Reverse((q, seed)) in other.heap {
            self.heap.push(std::cmp::Reverse((q, seed)));
            if self.heap.len() > self.k {
                self.heap.pop();
            }
        }
    }

    /// The collected records, best first, as `(similarity, seed)`.
    pub fn into_sorted(self) -> Vec<(f64, u64)> {
        let mut v: Vec<(u64, u64)> = self.heap.into_iter().map(|r| r.0).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v.into_iter().map(|(q, s)| (q as f64 / 1e9, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::testutil::records;

    #[test]
    fn lcs_identities() {
        let a = [1u32, 2, 3, 4];
        assert_eq!(TopKSearch::similarity(&a, &a), 1.0);
        assert_eq!(TopKSearch::similarity(&a, &[5, 6, 7, 8]), 0.0);
        assert_eq!(TopKSearch::similarity(&a, &[]), 0.0);
        // "1 3" is a subsequence of a: LCS=2, normalised by max(4,2)=4.
        assert_eq!(TopKSearch::similarity(&a, &[1, 3]), 0.5);
    }

    #[test]
    fn lcs_is_symmetric() {
        let a = [1u32, 2, 1, 3, 2];
        let b = [2u32, 1, 2, 2, 3];
        assert_eq!(
            TopKSearch::similarity(&a, &b),
            TopKSearch::similarity(&b, &a)
        );
    }

    #[test]
    fn similarities_bounded() {
        let job = TopKSearch::default();
        for r in &records(30) {
            let s = job.record_similarity(r);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn map_emits_one_bucket_per_record() {
        let job = TopKSearch::default();
        let mut n = 0;
        for r in &records(20) {
            job.map(r, &mut |k, v| {
                assert!(k < job.buckets);
                assert_eq!(v, 1.0);
                n += 1;
            });
        }
        assert_eq!(n, 20);
    }

    #[test]
    fn collector_keeps_the_best_k() {
        let mut c = TopKCollector::new(3);
        for (i, sim) in [0.1, 0.9, 0.5, 0.95, 0.2, 0.7].iter().enumerate() {
            c.offer(*sim, i as u64);
        }
        let top = c.into_sorted();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].1, 3); // 0.95
        assert_eq!(top[1].1, 1); // 0.9
        assert_eq!(top[2].1, 5); // 0.7
        assert!(top[0].0 > top[1].0 && top[1].0 > top[2].0);
    }

    #[test]
    fn collector_merge_equals_single_stream() {
        let sims: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37) % 1.0).collect();
        let mut whole = TopKCollector::new(5);
        for (i, &s) in sims.iter().enumerate() {
            whole.offer(s, i as u64);
        }
        let mut a = TopKCollector::new(5);
        let mut b = TopKCollector::new(5);
        for (i, &s) in sims.iter().enumerate() {
            if i % 2 == 0 {
                a.offer(s, i as u64);
            } else {
                b.offer(s, i as u64);
            }
        }
        a.merge(b);
        assert_eq!(a.into_sorted(), whole.into_sorted());
    }

    #[test]
    fn collector_with_the_real_job() {
        let job = TopKSearch::default();
        let mut c = TopKCollector::new(4);
        for r in &records(30) {
            c.offer(job.record_similarity(r), r.seed);
        }
        let top = c.into_sorted();
        assert_eq!(top.len(), 4);
        assert!(top.windows(2).all(|w| w[0].0 >= w[1].0));
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        TopKCollector::new(0);
    }

    #[test]
    fn random_sequences_over_small_alphabet_are_somewhat_similar() {
        // With alphabet 4 and length 64, random LCS similarity concentrates
        // well above 0 — sanity check that the compute actually discriminates.
        let job = TopKSearch::default();
        let sims: Vec<f64> = records(50)
            .iter()
            .map(|r| job.record_similarity(r))
            .collect();
        let mean = sims.iter().sum::<f64>() / sims.len() as f64;
        assert!(mean > 0.3 && mean < 0.95, "mean similarity {mean}");
        // Not all identical.
        assert!(sims.iter().any(|&s| (s - mean).abs() > 1e-3));
    }
}
