//! Aggregate Word Histogram — "computing the histogram of the words in the
//! input sub-dataset. This is a fundamental plug-in operation in the
//! MapReduce framework."

use crate::jobs::{word_count_of, RecordJob};
use crate::profiles::histogram_profile;
use datanet_dfs::Record;
use datanet_mapreduce::JobProfile;

/// Histogram of word frequencies aggregated into logarithmic rank classes
/// (Hadoop's `AggregateWordHistogram` plug-in aggregates per-word counts
/// into a fixed histogram).
#[derive(Debug, Clone, Copy, Default)]
pub struct AggregateHistogram;

impl AggregateHistogram {
    /// Histogram class of a word index: ⌊log₂(index + 1)⌋, 14 classes for
    /// the 8192-word vocabulary.
    pub fn class_of(word: u32) -> u64 {
        (64 - (word as u64 + 1).leading_zeros() - 1) as u64
    }
}

impl RecordJob for AggregateHistogram {
    fn name(&self) -> &str {
        "Histogram"
    }

    fn profile(&self) -> JobProfile {
        histogram_profile()
    }

    fn map(&self, record: &Record, emit: &mut dyn FnMut(u64, f64)) {
        let n = word_count_of(record);
        for w in record.payload().word_indices(n) {
            emit(Self::class_of(w), 1.0);
        }
    }

    fn reduce(&self, _key: u64, values: &[f64]) -> f64 {
        values.iter().sum()
    }

    /// Counting is associative: partial sums combine losslessly.
    fn combine(&self, _key: u64, values: &[f64]) -> Option<Vec<f64>> {
        Some(vec![values.iter().sum()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::testutil::records;
    use std::collections::HashMap;

    #[test]
    fn classes_are_logarithmic() {
        assert_eq!(AggregateHistogram::class_of(0), 0);
        assert_eq!(AggregateHistogram::class_of(1), 1);
        assert_eq!(AggregateHistogram::class_of(2), 1);
        assert_eq!(AggregateHistogram::class_of(3), 2);
        assert_eq!(AggregateHistogram::class_of(7), 3);
        assert_eq!(AggregateHistogram::class_of(8191), 13);
    }

    #[test]
    fn key_space_is_small() {
        // The whole point vs WordCount: few distinct keys → little shuffle.
        let recs = records(100);
        let mut keys: HashMap<u64, f64> = HashMap::new();
        for r in &recs {
            AggregateHistogram.map(r, &mut |k, v| *keys.entry(k).or_default() += v);
        }
        assert!(keys.len() <= 13, "got {} classes", keys.len());
        let total: f64 = keys.values().sum();
        let expected: usize = recs.iter().map(word_count_of).sum();
        assert_eq!(total as usize, expected);
    }

    #[test]
    fn skewed_words_fill_low_classes() {
        let recs = records(200);
        let mut keys: HashMap<u64, f64> = HashMap::new();
        for r in &recs {
            AggregateHistogram.map(r, &mut |k, v| *keys.entry(k).or_default() += v);
        }
        // Low word indices are most frequent (u³ power map): indices below
        // 2048 (classes 0..=11) carry P(u³ < 1/4) = 0.63 of the mass.
        let low: f64 = (0..=11).filter_map(|c| keys.get(&c)).sum();
        let total: f64 = keys.values().sum();
        assert!(low / total > 0.55, "low classes hold {low}/{total}");
    }
}
