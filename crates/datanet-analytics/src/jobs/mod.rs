//! Real record-level implementations of the four analysis jobs.
//!
//! The common [`RecordJob`] interface is a deliberately small MapReduce:
//! map emits `(u64 key, f64 value)` pairs per record, reduce folds the
//! values of one key. This is enough to express all four applications while
//! staying object-safe for the Rayon executor.

mod histogram;
mod moving_average;
mod top_k;
mod word_count;

pub use histogram::AggregateHistogram;
pub use moving_average::MovingAverage;
pub use top_k::{TopKCollector, TopKSearch};
pub use word_count::WordCount;

use datanet_dfs::Record;
use datanet_mapreduce::JobProfile;

/// A MapReduce application over records.
pub trait RecordJob: Sync {
    /// Job name (matches the profile name).
    fn name(&self) -> &str;

    /// The cost profile used by the simulated engine.
    fn profile(&self) -> JobProfile;

    /// Map one record, emitting intermediate pairs.
    fn map(&self, record: &Record, emit: &mut dyn FnMut(u64, f64));

    /// Reduce the values of one key.
    fn reduce(&self, key: u64, values: &[f64]) -> f64;

    /// Optional map-side combiner: compact one key's partition-local values
    /// before the shuffle. Must preserve the final reduce result
    /// (`reduce(k, combine(vs) ++ rest) == reduce(k, vs ++ rest)`), which
    /// holds for associative-commutative reductions like counting but not
    /// for means — jobs opt in by overriding. Default: no combining.
    fn combine(&self, _key: u64, _values: &[f64]) -> Option<Vec<f64>> {
        None
    }
}

/// Number of payload words a record of a given size carries (≈ 6 bytes per
/// word of English review text). Shared by the text-based jobs.
pub(crate) fn word_count_of(record: &Record) -> usize {
    (record.size as usize / 6).max(1)
}

#[cfg(test)]
pub(crate) mod testutil {
    use datanet_dfs::{Record, SubDatasetId};

    /// A small deterministic record batch for job tests.
    pub fn records(n: usize) -> Vec<Record> {
        (0..n as u64)
            .map(|i| Record::new(SubDatasetId(1), i * 60, 300 + (i % 7) as u32 * 50, i))
            .collect()
    }
}
