//! Moving Average — "analyzing data points by creating a series of averages
//! over intervals of the full dataset … can smooth out short-term
//! fluctuations to highlight longer-term cycles."

use crate::jobs::RecordJob;
use crate::profiles::moving_average_profile;
use datanet_dfs::Record;
use datanet_mapreduce::JobProfile;

/// Windowed average of review ratings over time.
#[derive(Debug, Clone, Copy)]
pub struct MovingAverage {
    /// Window width in seconds (default: one day).
    pub window_secs: u64,
}

impl Default for MovingAverage {
    fn default() -> Self {
        Self {
            window_secs: 86_400,
        }
    }
}

impl RecordJob for MovingAverage {
    fn name(&self) -> &str {
        "MovingAverage"
    }

    fn profile(&self) -> JobProfile {
        moving_average_profile()
    }

    fn map(&self, record: &Record, emit: &mut dyn FnMut(u64, f64)) {
        let window = record.timestamp / self.window_secs.max(1);
        emit(window, record.payload().rating());
    }

    /// Mean rating of the window.
    fn reduce(&self, _key: u64, values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::testutil::records;

    #[test]
    fn one_pair_per_record() {
        let recs = records(30);
        let mut n = 0;
        for r in &recs {
            MovingAverage::default().map(r, &mut |_, v| {
                assert!((0.0..10.0).contains(&v));
                n += 1;
            });
        }
        assert_eq!(n, 30);
    }

    #[test]
    fn windows_bucket_by_time() {
        let job = MovingAverage { window_secs: 100 };
        let r = datanet_dfs::Record::new(datanet_dfs::SubDatasetId(0), 250, 100, 1);
        let mut key = None;
        job.map(&r, &mut |k, _| key = Some(k));
        assert_eq!(key, Some(2));
    }

    #[test]
    fn reduce_is_mean() {
        let job = MovingAverage::default();
        assert_eq!(job.reduce(0, &[2.0, 4.0, 6.0]), 4.0);
        assert_eq!(job.reduce(0, &[]), 0.0);
    }
}
