//! Word Count — "reading the sub-dataset and counting how often words
//! occur. Word Count is one of the representative MapReduce benchmark
//! applications."

use crate::jobs::{word_count_of, RecordJob};
use crate::profiles::word_count_profile;
use datanet_dfs::Record;
use datanet_mapreduce::JobProfile;

/// Counts occurrences of each vocabulary word across the sub-dataset.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordCount;

impl RecordJob for WordCount {
    fn name(&self) -> &str {
        "WordCount"
    }

    fn profile(&self) -> JobProfile {
        word_count_profile()
    }

    fn map(&self, record: &Record, emit: &mut dyn FnMut(u64, f64)) {
        let n = word_count_of(record);
        for w in record.payload().word_indices(n) {
            emit(w as u64, 1.0);
        }
    }

    fn reduce(&self, _key: u64, values: &[f64]) -> f64 {
        values.iter().sum()
    }

    /// Counting is associative: partial sums combine losslessly.
    fn combine(&self, _key: u64, values: &[f64]) -> Option<Vec<f64>> {
        Some(vec![values.iter().sum()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::testutil::records;
    use std::collections::HashMap;

    #[test]
    fn counts_every_word_once() {
        let recs = records(50);
        let job = WordCount;
        let mut counts: HashMap<u64, f64> = HashMap::new();
        let mut emitted = 0usize;
        for r in &recs {
            job.map(r, &mut |k, v| {
                *counts.entry(k).or_default() += v;
                emitted += 1;
            });
        }
        let expected: usize = recs.iter().map(word_count_of).sum();
        assert_eq!(emitted, expected);
        let total: f64 = counts.values().sum();
        assert_eq!(total as usize, expected);
    }

    #[test]
    fn reduce_sums() {
        assert_eq!(WordCount.reduce(0, &[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(WordCount.reduce(0, &[]), 0.0);
    }

    #[test]
    fn deterministic_per_record() {
        let recs = records(5);
        let collect = |r: &Record| {
            let mut v = Vec::new();
            WordCount.map(r, &mut |k, _| v.push(k));
            v
        };
        for r in &recs {
            assert_eq!(collect(r), collect(r));
        }
    }

    #[test]
    fn keys_within_vocabulary() {
        for r in &records(20) {
            WordCount.map(r, &mut |k, _| {
                assert!((k as usize) < datanet_dfs::record::VOCABULARY);
            });
        }
    }
}
