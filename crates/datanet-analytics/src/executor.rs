//! The real parallel execution path: run a [`RecordJob`] over per-node
//! partitions with Rayon, one worker task per virtual node.
//!
//! This is the counterpart of the simulated engine for *actual* computation:
//! partition wall-times measured here exhibit the same imbalance the
//! simulator predicts (a node with 4× the records takes ≈4× as long),
//! which the Criterion benchmarks exploit to demonstrate the DataNet win on
//! real hardware.

use crate::jobs::RecordJob;
use datanet::planner::Assignment;
use datanet_dfs::{Dfs, NodeId, Record, SubDatasetId};
use rayon::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

/// Report of one parallel run.
#[derive(Debug, Clone)]
pub struct LocalRunReport {
    /// Wall-clock seconds each partition's map took.
    pub partition_secs: Vec<f64>,
    /// Records mapped per partition.
    pub partition_records: Vec<usize>,
    /// End-to-end wall-clock seconds (map + merge + reduce).
    pub total_secs: f64,
    /// Intermediate values that entered the merge (the "shuffle volume";
    /// map-side combining shrinks this).
    pub merged_values: usize,
    /// Final reduced output.
    pub reduced: HashMap<u64, f64>,
}

impl LocalRunReport {
    /// max/min partition time — the straggler ratio.
    pub fn skew(&self) -> f64 {
        let max = self.partition_secs.iter().cloned().fold(0.0f64, f64::max);
        let min = self
            .partition_secs
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        if min <= 0.0 || !min.is_finite() {
            return 1.0;
        }
        max / min
    }
}

/// Rayon-backed executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalExecutor;

impl LocalExecutor {
    /// Execute `job` over `partitions` (one map task per partition, run on
    /// the Rayon pool), then merge and reduce. If the job provides a
    /// combiner, each partition's values are compacted map-side before the
    /// merge — the Hadoop combiner optimisation.
    pub fn execute(&self, job: &dyn RecordJob, partitions: &[Vec<Record>]) -> LocalRunReport {
        let started = Instant::now();
        // Map each partition independently, collecting per-key value lists
        // and per-partition wall time.
        let mapped: Vec<(f64, HashMap<u64, Vec<f64>>)> = partitions
            .par_iter()
            .map(|part| {
                let t0 = Instant::now();
                let mut acc: HashMap<u64, Vec<f64>> = HashMap::new();
                for r in part {
                    job.map(r, &mut |k, v| acc.entry(k).or_default().push(v));
                }
                // Map-side combine.
                for (&k, vs) in acc.iter_mut() {
                    if let Some(compact) = job.combine(k, vs) {
                        *vs = compact;
                    }
                }
                (t0.elapsed().as_secs_f64(), acc)
            })
            .collect();

        let partition_secs: Vec<f64> = mapped.iter().map(|(t, _)| *t).collect();
        let partition_records: Vec<usize> = partitions.iter().map(|p| p.len()).collect();

        // Shuffle/merge: group all values by key.
        let mut grouped: HashMap<u64, Vec<f64>> = HashMap::new();
        let mut merged_values = 0usize;
        for (_, acc) in mapped {
            for (k, mut vs) in acc {
                merged_values += vs.len();
                grouped.entry(k).or_default().append(&mut vs);
            }
        }

        // Reduce in parallel over keys.
        let reduced: HashMap<u64, f64> = grouped
            .into_par_iter()
            .map(|(k, vs)| (k, job.reduce(k, &vs)))
            .collect();

        LocalRunReport {
            partition_secs,
            partition_records,
            total_secs: started.elapsed().as_secs_f64(),
            merged_values,
            reduced,
        }
    }
}

/// Materialise per-node partitions of sub-dataset `s` according to an
/// [`Assignment`]: node `n`'s partition holds the matching records of every
/// block assigned to it.
pub fn partitions_from_assignment(
    dfs: &Dfs,
    s: SubDatasetId,
    assignment: &Assignment,
) -> Vec<Vec<Record>> {
    (0..assignment.node_count())
        .map(|n| {
            let mut part = Vec::new();
            for &b in assignment.tasks_of(NodeId(n as u32)) {
                part.extend(dfs.block(b).filter(s).copied());
            }
            part
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{MovingAverage, WordCount};
    use datanet::{Algorithm1, ElasticMapArray, Separation};
    use datanet_dfs::{DfsConfig, Record, Topology};

    fn dfs() -> Dfs {
        let recs = (0..2000u64).map(|i| {
            let s = if i % 4 == 0 { 0 } else { 1 + i % 7 };
            Record::new(SubDatasetId(s), i, 120, i)
        });
        Dfs::write_random(
            DfsConfig {
                block_size: 6_000,
                replication: 2,
                topology: Topology::single_rack(4),
                seed: 8,
            },
            recs,
        )
    }

    #[test]
    fn partitions_cover_the_subdataset_exactly() {
        let d = dfs();
        let s = SubDatasetId(0);
        let view = ElasticMapArray::build(&d, &Separation::All).view(s);
        let plan = Algorithm1::new(&d, &view).plan_balanced();
        let parts = partitions_from_assignment(&d, s, &plan);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 500, "every 4th of 2000 records");
        assert!(parts.iter().flatten().all(|r| r.subdataset == s));
    }

    #[test]
    fn word_count_totals_are_partition_invariant() {
        let d = dfs();
        let s = SubDatasetId(0);
        let view = ElasticMapArray::build(&d, &Separation::All).view(s);
        let plan = Algorithm1::new(&d, &view).plan_balanced();
        let parts = partitions_from_assignment(&d, s, &plan);

        let run = LocalExecutor.execute(&WordCount, &parts);
        // Single-partition reference run.
        let all: Vec<Record> = parts.iter().flatten().copied().collect();
        let reference = LocalExecutor.execute(&WordCount, &[all]);
        assert_eq!(
            run.reduced, reference.reduced,
            "partitioning must not change results"
        );
        let total: f64 = run.reduced.values().sum();
        assert!(total > 0.0);
    }

    #[test]
    fn moving_average_outputs_window_means() {
        let d = dfs();
        let s = SubDatasetId(0);
        let view = ElasticMapArray::build(&d, &Separation::All).view(s);
        let plan = Algorithm1::new(&d, &view).plan_balanced();
        let parts = partitions_from_assignment(&d, s, &plan);
        let run = LocalExecutor.execute(&MovingAverage { window_secs: 500 }, &parts);
        for (&_, &mean) in &run.reduced {
            assert!((0.0..10.0).contains(&mean));
        }
        assert!(!run.reduced.is_empty());
    }

    #[test]
    fn report_accounting() {
        let d = dfs();
        let s = SubDatasetId(0);
        let view = ElasticMapArray::build(&d, &Separation::All).view(s);
        let plan = Algorithm1::new(&d, &view).plan_balanced();
        let parts = partitions_from_assignment(&d, s, &plan);
        let run = LocalExecutor.execute(&WordCount, &parts);
        assert_eq!(run.partition_secs.len(), parts.len());
        assert_eq!(
            run.partition_records,
            parts.iter().map(|p| p.len()).collect::<Vec<_>>()
        );
        assert!(run.total_secs >= 0.0);
        assert!(run.skew() >= 1.0);
    }

    #[test]
    fn combiner_shrinks_shuffle_volume_without_changing_results() {
        let d = dfs();
        let s = SubDatasetId(0);
        let view = ElasticMapArray::build(&d, &Separation::All).view(s);
        let plan = Algorithm1::new(&d, &view).plan_balanced();
        let parts = partitions_from_assignment(&d, s, &plan);
        // WordCount has a combiner; wrap it in a combiner-less shim for the
        // baseline.
        struct NoCombine(WordCount);
        impl crate::jobs::RecordJob for NoCombine {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn profile(&self) -> datanet_mapreduce::JobProfile {
                self.0.profile()
            }
            fn map(&self, r: &Record, emit: &mut dyn FnMut(u64, f64)) {
                self.0.map(r, emit)
            }
            fn reduce(&self, k: u64, vs: &[f64]) -> f64 {
                self.0.reduce(k, vs)
            }
        }
        let with = LocalExecutor.execute(&WordCount, &parts);
        let without = LocalExecutor.execute(&NoCombine(WordCount), &parts);
        assert_eq!(
            with.reduced, without.reduced,
            "combiner must not change results"
        );
        assert!(
            with.merged_values < without.merged_values,
            "combined {} !< raw {}",
            with.merged_values,
            without.merged_values
        );
        // The effect is dramatic for a small key space: AggregateHistogram
        // collapses everything to (#partitions × #classes) values.
        let hist = LocalExecutor.execute(&crate::jobs::AggregateHistogram, &parts);
        assert!(
            hist.merged_values <= parts.len() * 14,
            "histogram combiner left {} values",
            hist.merged_values
        );
    }

    #[test]
    fn moving_average_has_no_combiner() {
        // A mean is not associative over raw values; the job must decline.
        let job = MovingAverage::default();
        assert!(crate::jobs::RecordJob::combine(&job, 0, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn empty_partitions_are_fine() {
        let run = LocalExecutor.execute(&WordCount, &[Vec::new(), Vec::new()]);
        assert!(run.reduced.is_empty());
        assert_eq!(run.partition_records, vec![0, 0]);
    }
}
