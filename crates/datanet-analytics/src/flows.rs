//! Network-flow construction — the paper's second motivating analysis
//! ("in network traffic systems, flow construction based on network traffic
//! traces should differentiate different types of network traffic and
//! conduct analysis accordingly").
//!
//! Records are packets; the sub-dataset id is the flow key (5-tuple hash).
//! A flow is a maximal packet run without an idle gap exceeding the flow
//! timeout — structurally a cousin of sessionization, but reporting
//! traffic-oriented metrics.

use datanet_dfs::Record;
use serde::{Deserialize, Serialize};

/// One reconstructed flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// First packet timestamp.
    pub start: u64,
    /// Last packet timestamp.
    pub end: u64,
    /// Packet count.
    pub packets: usize,
    /// Total bytes.
    pub bytes: u64,
}

impl Flow {
    /// Flow duration in seconds.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }

    /// Mean throughput in bytes/second (bytes over duration; whole burst
    /// in one second counts as its byte size).
    pub fn throughput(&self) -> f64 {
        self.bytes as f64 / self.duration().max(1) as f64
    }
}

/// Reconstruct flows from one flow-key's time-sorted packets.
///
/// # Panics
/// Panics if `timeout_secs == 0`; debug-asserts sortedness.
pub fn construct_flows(packets: &[Record], timeout_secs: u64) -> Vec<Flow> {
    assert!(timeout_secs > 0, "flow timeout must be positive");
    if packets.is_empty() {
        return Vec::new();
    }
    debug_assert!(
        packets.windows(2).all(|w| w[0].timestamp <= w[1].timestamp),
        "packets must be sorted by timestamp"
    );
    let mut flows = Vec::new();
    let mut start = packets[0].timestamp;
    let mut last = packets[0].timestamp;
    let mut count = 1usize;
    let mut bytes = packets[0].size as u64;
    for p in &packets[1..] {
        if p.timestamp - last > timeout_secs {
            flows.push(Flow {
                start,
                end: last,
                packets: count,
                bytes,
            });
            start = p.timestamp;
            count = 0;
            bytes = 0;
        }
        last = p.timestamp;
        count += 1;
        bytes += p.size as u64;
    }
    flows.push(Flow {
        start,
        end: last,
        packets: count,
        bytes,
    });
    flows
}

/// Classify flows the way traffic studies do: by size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowClass {
    /// Short transactional flow (< 10 kB).
    Mouse,
    /// Bulk transfer (≥ 10 kB).
    Elephant,
}

impl Flow {
    /// Mouse/elephant classification at the conventional 10 kB cut.
    pub fn class(&self) -> FlowClass {
        if self.bytes >= 10_000 {
            FlowClass::Elephant
        } else {
            FlowClass::Mouse
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::SubDatasetId;

    fn pkt(ts: u64, size: u32) -> Record {
        Record::new(SubDatasetId(7), ts, size, ts)
    }

    #[test]
    fn contiguous_packets_form_one_flow() {
        let pkts: Vec<Record> = (0..5).map(|i| pkt(i, 1500)).collect();
        let flows = construct_flows(&pkts, 10);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].packets, 5);
        assert_eq!(flows[0].bytes, 7500);
        assert_eq!(flows[0].duration(), 4);
    }

    #[test]
    fn idle_gap_starts_new_flow() {
        let pkts = vec![pkt(0, 100), pkt(5, 100), pkt(100, 100)];
        let flows = construct_flows(&pkts, 30);
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].packets, 2);
        assert_eq!(flows[1].packets, 1);
    }

    #[test]
    fn classification() {
        let mouse = Flow {
            start: 0,
            end: 1,
            packets: 3,
            bytes: 900,
        };
        let elephant = Flow {
            start: 0,
            end: 10,
            packets: 100,
            bytes: 150_000,
        };
        assert_eq!(mouse.class(), FlowClass::Mouse);
        assert_eq!(elephant.class(), FlowClass::Elephant);
    }

    #[test]
    fn throughput_guards_zero_duration() {
        let f = Flow {
            start: 5,
            end: 5,
            packets: 1,
            bytes: 1500,
        };
        assert_eq!(f.throughput(), 1500.0);
    }

    #[test]
    fn empty_input() {
        assert!(construct_flows(&[], 10).is_empty());
    }
}
