//! User sessionization — the paper's first motivating analysis
//! ("in recommendation systems and personalized web services, the analysis
//! on the webpage click streams needs to perform user sessionization
//! analysis so as to provide better service for each user").
//!
//! A *session* is a maximal run of one user's records with no gap larger
//! than the timeout. Sub-dataset = one user's click stream.

use datanet_dfs::Record;
use serde::{Deserialize, Serialize};

/// One reconstructed session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Session {
    /// First event timestamp.
    pub start: u64,
    /// Last event timestamp.
    pub end: u64,
    /// Number of events in the session.
    pub events: usize,
    /// Total bytes of the session's records.
    pub bytes: u64,
}

impl Session {
    /// Session duration in seconds.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// Split one user's records into sessions with the given inactivity
/// `timeout_secs`.
///
/// Records must belong to a single sub-dataset and be sorted by timestamp
/// (both are upheld by the filter pipeline).
///
/// # Panics
/// Panics if records are unsorted or mix sub-datasets (debug builds).
pub fn sessionize(records: &[Record], timeout_secs: u64) -> Vec<Session> {
    assert!(timeout_secs > 0, "session timeout must be positive");
    if records.is_empty() {
        return Vec::new();
    }
    debug_assert!(
        records.windows(2).all(|w| w[0].timestamp <= w[1].timestamp),
        "records must be sorted by timestamp"
    );
    debug_assert!(
        records
            .windows(2)
            .all(|w| w[0].subdataset == w[1].subdataset),
        "sessionize expects a single sub-dataset"
    );
    let mut sessions = Vec::new();
    let mut start = records[0].timestamp;
    let mut last = records[0].timestamp;
    let mut events = 1usize;
    let mut bytes = records[0].size as u64;
    for r in &records[1..] {
        if r.timestamp - last > timeout_secs {
            sessions.push(Session {
                start,
                end: last,
                events,
                bytes,
            });
            start = r.timestamp;
            events = 0;
            bytes = 0;
        }
        last = r.timestamp;
        events += 1;
        bytes += r.size as u64;
    }
    sessions.push(Session {
        start,
        end: last,
        events,
        bytes,
    });
    sessions
}

/// Summary statistics over a user's sessions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Number of sessions.
    pub count: usize,
    /// Mean events per session.
    pub mean_events: f64,
    /// Mean session duration (seconds).
    pub mean_duration: f64,
    /// Longest session duration.
    pub max_duration: u64,
}

/// Compute session statistics for one user's sorted records.
pub fn session_stats(records: &[Record], timeout_secs: u64) -> SessionStats {
    let sessions = sessionize(records, timeout_secs);
    let count = sessions.len();
    if count == 0 {
        return SessionStats {
            count: 0,
            mean_events: 0.0,
            mean_duration: 0.0,
            max_duration: 0,
        };
    }
    SessionStats {
        count,
        mean_events: sessions.iter().map(|s| s.events).sum::<usize>() as f64 / count as f64,
        mean_duration: sessions.iter().map(|s| s.duration()).sum::<u64>() as f64 / count as f64,
        max_duration: sessions.iter().map(|s| s.duration()).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::SubDatasetId;

    fn rec(ts: u64) -> Record {
        Record::new(SubDatasetId(1), ts, 100, ts)
    }

    #[test]
    fn single_burst_is_one_session() {
        let recs: Vec<Record> = (0..10).map(|i| rec(i * 10)).collect();
        let s = sessionize(&recs, 30);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].events, 10);
        assert_eq!(s[0].start, 0);
        assert_eq!(s[0].end, 90);
        assert_eq!(s[0].bytes, 1000);
    }

    #[test]
    fn gap_splits_sessions() {
        let recs = vec![rec(0), rec(10), rec(1000), rec(1010), rec(5000)];
        let s = sessionize(&recs, 60);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].events, 2);
        assert_eq!(s[1].events, 2);
        assert_eq!(s[2].events, 1);
        assert_eq!(s[2].duration(), 0);
    }

    #[test]
    fn boundary_gap_exactly_timeout_stays_joined() {
        let recs = vec![rec(0), rec(60)];
        assert_eq!(sessionize(&recs, 60).len(), 1);
        let recs = vec![rec(0), rec(61)];
        assert_eq!(sessionize(&recs, 60).len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(sessionize(&[], 60).is_empty());
        let st = session_stats(&[], 60);
        assert_eq!(st.count, 0);
    }

    #[test]
    fn stats_aggregate_sessions() {
        let recs = vec![rec(0), rec(10), rec(500), rec(520), rec(540)];
        let st = session_stats(&recs, 60);
        assert_eq!(st.count, 2);
        assert!((st.mean_events - 2.5).abs() < 1e-12);
        assert!((st.mean_duration - 25.0).abs() < 1e-12);
        assert_eq!(st.max_duration, 40);
    }

    #[test]
    #[should_panic]
    fn zero_timeout_rejected() {
        sessionize(&[rec(0)], 0);
    }
}
