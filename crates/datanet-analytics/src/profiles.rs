//! Cost profiles of the four Section V applications for the simulated
//! engine.
//!
//! Calibration targets the paper's *relative* statements, not absolute
//! seconds:
//!
//! * Moving Average "only needs to iterate the data" — map factor near 1,
//!   tiny intermediate output;
//! * Word Count "needs to combine words" — several CPU operations per byte
//!   and a substantial shuffle volume;
//! * Aggregate Word Histogram is Word Count-like with a coarser key space
//!   (less shuffle);
//! * Top-K Search "needs heavy computation due to the similarity
//!   comparison" — by far the largest map factor, negligible output.
//!
//! With these shapes the simulated Figure 5(a) improvements land near the
//! paper's 20 / 39 / 41 / 42 % ordering (see EXPERIMENTS.md).

use datanet_mapreduce::JobProfile;

/// Moving Average: single pass over ratings, windowed means.
pub fn moving_average_profile() -> JobProfile {
    JobProfile::new("MovingAverage", 0.35, 0.04, 0.5)
}

/// Word Count: tokenize + combine; intermediate data is word/count pairs.
pub fn word_count_profile() -> JobProfile {
    JobProfile::new("WordCount", 8.0, 0.35, 1.0)
}

/// Aggregate Word Histogram: tokenize + bucket; coarser keys than Word
/// Count so less shuffle volume at similar map cost.
pub fn histogram_profile() -> JobProfile {
    JobProfile::new("Histogram", 9.0, 0.12, 1.0)
}

/// Top-K Search: per-record similarity comparison against the query
/// sequence; compute-dominated, top lists are tiny.
pub fn top_k_profile() -> JobProfile {
    JobProfile::new("TopKSearch", 14.0, 0.01, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_valid() {
        for p in [
            moving_average_profile(),
            word_count_profile(),
            histogram_profile(),
            top_k_profile(),
        ] {
            p.validate();
        }
    }

    #[test]
    fn compute_intensity_ordering_matches_paper() {
        // MovingAverage < WordCount ≤ Histogram < TopK.
        let ma = moving_average_profile().map_compute_factor;
        let wc = word_count_profile().map_compute_factor;
        let hg = histogram_profile().map_compute_factor;
        let tk = top_k_profile().map_compute_factor;
        assert!(ma < wc && wc <= hg && hg < tk);
    }

    #[test]
    fn shuffle_volume_ordering() {
        // WordCount shuffles the most; TopK the least.
        let wc = word_count_profile().output_ratio;
        let hg = histogram_profile().output_ratio;
        let ma = moving_average_profile().output_ratio;
        let tk = top_k_profile().output_ratio;
        assert!(wc > hg && hg > ma && ma > tk);
    }
}
