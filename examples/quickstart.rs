//! Quickstart: the whole DataNet pipeline in ~60 lines.
//!
//! 1. Generate a clustered log and store it on the simulated DFS.
//! 2. Build the ElasticMap meta-data in one scan.
//! 3. Query one sub-dataset's distribution.
//! 4. Plan a balanced execution and compare it with blind scheduling.
//!
//! Run with: `cargo run --release --example quickstart`

use datanet::prelude::*;
use datanet_dfs::{Dfs, DfsConfig, SubDatasetId, Topology};
use datanet_workloads::MoviesConfig;

fn main() {
    // 1. A small chronological movie-review log → 4 MB DFS, 8 nodes.
    let (records, catalog) = MoviesConfig {
        movies: 200,
        records: 8_000,
        ..Default::default()
    }
    .generate();
    let dfs = Dfs::write_random(
        DfsConfig {
            block_size: 64 * 1024,
            replication: 3,
            topology: Topology::single_rack(8),
            seed: 1,
        },
        records,
    );
    println!(
        "stored {} records in {} blocks on {} nodes",
        8_000,
        dfs.block_count(),
        dfs.config().topology.len()
    );

    // 2. One parallel scan builds the per-block ElasticMaps (α = 0.3).
    let maps = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    println!(
        "meta-data: {} maps, {} bytes total ({}x smaller than the raw data)",
        maps.len(),
        maps.memory_bytes(),
        (dfs.total_bytes() as usize / maps.memory_bytes().max(1))
    );

    // 3. Distribution of the most-reviewed movie.
    let hot: SubDatasetId = catalog.most_reviewed();
    let view = maps.view(hot);
    println!(
        "movie {hot}: seen in {} blocks ({} exact + {} bloom), estimated {} bytes \
         (actual {} bytes)",
        view.block_count(),
        view.exact().len(),
        view.bloom().len(),
        view.estimated_total(),
        dfs.subdataset_total(hot)
    );

    // 4. Balanced plan vs naive round-robin.
    let plan = Algorithm1::new(&dfs, &view).plan_balanced();
    println!(
        "Algorithm 1 plan: {} tasks, imbalance {:.2} (1.0 = perfect), locality {:.0}%",
        plan.assigned_blocks(),
        plan.imbalance(),
        plan.locality_fraction() * 100.0
    );
    let optimal = FordFulkersonPlanner::new(&dfs, &view).plan();
    println!(
        "Ford-Fulkerson plan: imbalance {:.2}, all-local by construction",
        optimal.imbalance()
    );
}
