//! The memory/accuracy/balance trade-off in one place: sweep the ElasticMap
//! α, watch the Equation 5 memory cost, the Equation 6 estimation accuracy
//! and the resulting schedule balance move together.
//!
//! Run with: `cargo run --release --example schedule_planner`

use datanet::prelude::*;
use datanet_dfs::{Dfs, DfsConfig, Topology};
use datanet_workloads::MoviesConfig;

fn main() {
    let (records, catalog) = MoviesConfig {
        movies: 800,
        records: 30_000,
        ..Default::default()
    }
    .generate();
    let dfs = Dfs::write_random(
        DfsConfig {
            block_size: 128 * 1024,
            replication: 3,
            topology: Topology::single_rack(12),
            seed: 4,
        },
        records,
    );
    let hot = catalog.most_reviewed();
    let actual = dfs.subdataset_total(hot);
    let model = MemoryModel::default();

    println!("alpha | meta bytes | est. accuracy | plan imbalance | Eq.5 bits/subdataset");
    println!("------+------------+---------------+----------------+---------------------");
    for pct in [5usize, 10, 20, 30, 50, 75, 100] {
        let alpha = pct as f64 / 100.0;
        let maps = ElasticMapArray::build(&dfs, &Separation::Alpha(alpha));
        let view = maps.view(hot);
        let est = view.estimated_total();
        let acc = 1.0 - (est as f64 - actual as f64).abs() / actual as f64;
        let plan = Algorithm1::new(&dfs, &view).plan_balanced();
        println!(
            "{pct:4}% | {:10} | {:12.1}% | {:14.3} | {:19.1}",
            maps.memory_bytes(),
            acc * 100.0,
            plan.imbalance(),
            model.cost_bits(1, alpha),
        );
    }

    // Picking α for a memory budget.
    let budget = 64.0 * 1024.0; // 64 kB of meta-data for the whole dataset
    let per_block = budget / dfs.block_count() as f64;
    let mean_distinct = 40; // typical distinct sub-datasets per block here
    let alpha = model.max_alpha_for_budget(mean_distinct, per_block);
    println!(
        "\nfor a {budget:.0}-byte budget ({per_block:.0} B/block), Equation 5 \
         suggests alpha <= {:.0}%",
        alpha * 100.0
    );
}
