//! GitHub event-log analysis: the paper's second dataset. Filters
//! `IssueEvent` and shows that DataNet still balances a distribution that
//! is imbalanced *without* being content-clustered, plus a sessionization
//! pass over the filtered events.
//!
//! Run with: `cargo run --release --example github_events`

use datanet::prelude::*;
use datanet_analytics::session::session_stats;
use datanet_dfs::{Dfs, DfsConfig, Topology};
use datanet_mapreduce::{run_selection, DataNetScheduler, LocalityScheduler, SelectionConfig};
use datanet_workloads::{EventType, GithubConfig};

fn main() {
    let nodes = 16u32;
    let records = GithubConfig {
        records: 60_000,
        ..Default::default()
    }
    .generate();
    let dfs = Dfs::write_random(
        DfsConfig {
            block_size: 256 * 1024,
            replication: 3,
            topology: Topology::single_rack(nodes),
            seed: 3,
        },
        records,
    );
    let issue = EventType::Issue.id();
    let truth = dfs.subdataset_distribution(issue);
    println!(
        "GitHub log: {} blocks; IssueEvent present in {} of them",
        dfs.block_count(),
        truth.iter().filter(|&&b| b > 0).count()
    );

    let sel = SelectionConfig::default();
    let mut base = LocalityScheduler::new(&dfs);
    let without = run_selection(&dfs, &truth, &mut base, &sel);
    let maps = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let mut dn = DataNetScheduler::new(&dfs, &maps.view(issue));
    let with = run_selection(&dfs, &truth, &mut dn, &sel);
    println!(
        "IssueEvent selection imbalance: locality {:.2} → DataNet {:.2}",
        without.imbalance(),
        with.imbalance()
    );

    // Sessionize the filtered IssueEvents (one "user" = the event type here;
    // in a real deployment the key would be the repo or actor id).
    let mut events: Vec<_> = dfs
        .blocks()
        .iter()
        .flat_map(|b| b.filter(issue).copied())
        .collect();
    events.sort_by_key(|r| r.timestamp);
    let stats = session_stats(&events, 1800);
    println!(
        "sessionization (30 min timeout): {} bursts, {:.1} events/burst on average, \
         longest burst {}s",
        stats.count, stats.mean_events, stats.max_duration
    );
}
