//! Movie-log analysis end to end: reproduce the paper's main experiment in
//! miniature, including a *real* (Rayon) Word Count over the filtered
//! sub-dataset.
//!
//! Run with: `cargo run --release --example movie_analysis`

use datanet::prelude::*;
use datanet_analytics::jobs::{RecordJob, WordCount};
use datanet_analytics::profiles::word_count_profile;
use datanet_analytics::{partitions_from_assignment, LocalExecutor};
use datanet_dfs::{Dfs, DfsConfig, Topology};
use datanet_mapreduce::{
    run_pipeline, AnalysisConfig, DataNetScheduler, LocalityScheduler, SelectionConfig,
};
use datanet_workloads::MoviesConfig;

fn main() {
    let nodes = 16u32;
    let (records, catalog) = MoviesConfig {
        movies: 500,
        records: 40_000,
        ..Default::default()
    }
    .generate();
    let dfs = Dfs::write_random(
        DfsConfig {
            block_size: 128 * 1024,
            replication: 3,
            topology: Topology::single_rack(nodes),
            seed: 2,
        },
        records,
    );
    let hot = catalog.most_reviewed();
    println!(
        "dataset: {} blocks; analysing movie {hot} ({} bytes of reviews)\n",
        dfs.block_count(),
        dfs.subdataset_total(hot)
    );

    // --- Simulated cluster comparison (the paper's Figure 5 pipeline).
    let job = word_count_profile();
    let sel = SelectionConfig::default();
    let ana = AnalysisConfig::default();
    let mut base = LocalityScheduler::new(&dfs);
    let without = run_pipeline(&dfs, hot, &mut base, &job, &sel, &ana);
    let maps = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let mut dn = DataNetScheduler::new(&dfs, &maps.view(hot));
    let with = run_pipeline(&dfs, hot, &mut dn, &job, &sel, &ana);
    println!(
        "simulated WordCount: without DataNet {:.3}s, with DataNet {:.3}s ({:.1}% faster)",
        without.total_secs(),
        with.total_secs(),
        100.0 * (1.0 - with.total_secs() / without.total_secs())
    );
    println!(
        "filtered-workload imbalance: without {:.2}, with {:.2}\n",
        without.selection.imbalance(),
        with.selection.imbalance()
    );

    // --- Real Rayon execution over the two partitionings.
    let wc = WordCount;
    let balanced = Algorithm1::new(&dfs, &maps.view(hot)).plan_balanced();
    let parts = partitions_from_assignment(&dfs, hot, &balanced);
    let run = LocalExecutor.execute(&wc, &parts);
    let top = {
        let mut v: Vec<(&u64, &f64)> = run.reduced.iter().collect();
        v.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap().then(a.0.cmp(b.0)));
        v.into_iter()
            .take(5)
            .map(|(k, c)| format!("w{k}×{c:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!(
        "real WordCount over {} partitions: {} distinct words, top: {top}",
        parts.len(),
        run.reduced.len()
    );
    let max_recs = run.partition_records.iter().max().copied().unwrap_or(0);
    let min_recs = run.partition_records.iter().min().copied().unwrap_or(0);
    println!(
        "partition sizes: {min_recs}..{max_recs} records — balanced partitions \
         keep real workers busy evenly (wall-time skew {:.2}; at this tiny \
         scale wall times are dominated by thread-pool noise)",
        run.skew()
    );
    assert_eq!(wc.name(), "WordCount");
}
