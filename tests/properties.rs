//! Property-style tests over the core data structures and algorithms:
//! invariants that must hold for *any* input, not just the calibrated
//! experiment datasets. Cases are generated from seeded RNG loops so runs
//! are deterministic and need no external property-testing framework.

use datanet::planner::BalancePolicy;
use datanet::{
    plan_aggregation, uniform_baseline_traffic, Algorithm1, BloomFilter, Buckets, ElasticMap,
    ElasticMapArray, FordFulkersonPlanner, MetaStore, Separation, SizeInfo,
};
use datanet_dfs::{Block, BlockId, Dfs, DfsConfig, Record, SubDatasetId, Topology};
use datanet_stats::GammaDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

/// A random small block of records.
fn gen_block(rng: &mut StdRng) -> Block {
    let len = rng.gen_range(1..200);
    let records = (0..len)
        .map(|i| {
            Record::new(
                SubDatasetId(rng.gen_range(0u64..40)),
                i as u64,
                rng.gen_range(1u32..5_000),
                rng.gen::<u64>(),
            )
        })
        .collect();
    Block::new(BlockId(0), records)
}

/// A random tiny DFS.
fn gen_dfs(rng: &mut StdRng) -> Dfs {
    let record_count = rng.gen_range(20..400);
    let nodes = rng.gen_range(2u32..12);
    let replication = rng.gen_range(1usize..4);
    let seed = rng.gen::<u64>();
    let records: Vec<Record> = (0..record_count)
        .map(|i| {
            Record::new(
                SubDatasetId(rng.gen_range(0u64..20)),
                i as u64,
                rng.gen_range(50u32..500),
                i as u64,
            )
        })
        .collect();
    Dfs::write_dataset(
        DfsConfig {
            block_size: 2_000,
            replication,
            topology: Topology::single_rack(nodes),
            seed,
        },
        records,
        &datanet_dfs::RandomPlacement,
    )
}

#[test]
fn bloom_filter_has_no_false_negatives() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1000 + case);
        let len = rng.gen_range(1..500);
        let ids: std::collections::HashSet<u64> = (0..len).map(|_| rng.gen::<u64>()).collect();
        let mut f = BloomFilter::with_rate(ids.len(), 0.01);
        for &id in &ids {
            f.insert(SubDatasetId(id));
        }
        for &id in &ids {
            assert!(f.contains(SubDatasetId(id)), "case {case}: lost {id}");
        }
    }
}

#[test]
fn elasticmap_never_reports_present_as_absent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2000 + case);
        let block = gen_block(&mut rng);
        let alpha = rng.gen_range(0.0f64..1.0);
        let map = ElasticMap::build(&block, &Separation::Alpha(alpha));
        for (&id, &size) in block.subdataset_sizes().iter() {
            assert!(size > 0);
            assert_ne!(map.query(id), SizeInfo::Absent, "case {case}: lost {id}");
        }
    }
}

#[test]
fn elasticmap_exact_entries_are_ground_truth() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3000 + case);
        let block = gen_block(&mut rng);
        let alpha = rng.gen_range(0.0f64..1.0);
        let map = ElasticMap::build(&block, &Separation::Alpha(alpha));
        let truth = block.subdataset_sizes();
        for (id, size) in map.exact_entries() {
            assert_eq!(truth[&id], size, "case {case}");
        }
    }
}

#[test]
fn elasticmap_achieves_requested_alpha() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x4000 + case);
        let block = gen_block(&mut rng);
        let alpha = rng.gen_range(0.0f64..1.0);
        let map = ElasticMap::build(&block, &Separation::Alpha(alpha));
        assert!(map.achieved_alpha() >= alpha - 1e-9, "case {case}");
        assert_eq!(
            map.distinct(),
            block.subdataset_sizes().len(),
            "case {case}"
        );
    }
}

#[test]
fn bucket_threshold_selects_a_superset_of_top_quota() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5000 + case);
        let len = rng.gen_range(1..300);
        let sizes: Vec<u64> = (0..len).map(|_| rng.gen_range(1u64..200_000)).collect();
        let quota_frac = rng.gen_range(0.0f64..1.0);
        let mut counter = datanet::BucketCounter::new(Buckets::paper());
        for (i, &s) in sizes.iter().enumerate() {
            counter.record(SubDatasetId(i as u64), s);
        }
        let quota = (quota_frac * sizes.len() as f64).ceil() as usize;
        let threshold = counter.dominance_threshold(quota);
        let selected = sizes.iter().filter(|&&s| s >= threshold).count();
        assert!(
            selected >= quota.min(sizes.len()),
            "case {case}: quota {quota} but only {selected} selected at threshold {threshold}"
        );
    }
}

#[test]
fn equation6_estimate_includes_all_exact_mass() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6000 + case);
        let dfs = gen_dfs(&mut rng);
        let s = rng.gen_range(0u64..20);
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let view = arr.view(SubDatasetId(s));
        let exact_sum: u64 = view.exact().iter().map(|&(_, b)| b).sum();
        assert!(view.estimated_total() >= exact_sum, "case {case}");
        // Every τ1/τ2 block must really be a block of the DFS.
        for b in view.blocks() {
            assert!(b.index() < dfs.block_count(), "case {case}");
        }
    }
}

#[test]
fn algorithm1_assigns_scope_exactly_once() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7000 + case);
        let dfs = gen_dfs(&mut rng);
        let s = rng.gen_range(0u64..20);
        let literal = rng.gen_bool(0.5);
        let arr = ElasticMapArray::build(&dfs, &Separation::All);
        let view = arr.view(SubDatasetId(s));
        let policy = if literal {
            BalancePolicy::BestFitTerminal
        } else {
            BalancePolicy::PacedGreedy
        };
        let plan = Algorithm1::with_policy(dfs.namenode(), &view, policy).plan_balanced();
        assert_eq!(plan.assigned_blocks(), view.block_count(), "case {case}");
        let mut seen = std::collections::HashSet::new();
        for n in 0..plan.node_count() {
            for &b in plan.tasks_of(datanet_dfs::NodeId(n as u32)) {
                assert!(seen.insert(b), "case {case}: block {b:?} assigned twice");
            }
        }
        assert_eq!(
            plan.workloads().iter().sum::<u64>(),
            view.estimated_total(),
            "case {case}"
        );
    }
}

#[test]
fn ford_fulkerson_plans_are_local_and_complete() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x8000 + case);
        let dfs = gen_dfs(&mut rng);
        let s = rng.gen_range(0u64..20);
        let arr = ElasticMapArray::build(&dfs, &Separation::All);
        let view = arr.view(SubDatasetId(s));
        let plan = FordFulkersonPlanner::new(&dfs, &view).plan();
        assert_eq!(plan.assigned_blocks(), view.block_count(), "case {case}");
        for n in 0..plan.node_count() {
            for &b in plan.tasks_of(datanet_dfs::NodeId(n as u32)) {
                assert!(
                    dfs.namenode().is_local(b, datanet_dfs::NodeId(n as u32)),
                    "case {case}"
                );
            }
        }
        // Fractional optimum is a valid lower bound.
        let t = FordFulkersonPlanner::new(&dfs, &view).fractional_optimum();
        assert!(
            plan.max_workload() >= t || view.block_count() == 0,
            "case {case}"
        );
    }
}

#[test]
fn gamma_cdf_is_monotone_and_bounded() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9000 + case);
        let shape = rng.gen_range(0.1f64..20.0);
        let scale = rng.gen_range(0.1f64..50.0);
        let g = GammaDist::new(shape, scale);
        let mut prev = 0.0;
        for i in 0..50 {
            let x = i as f64 * scale;
            let c = g.cdf(x);
            assert!((0.0..=1.0).contains(&c), "case {case}");
            assert!(c >= prev - 1e-12, "case {case}");
            prev = c;
        }
    }
}

#[test]
fn aggregation_plan_is_valid_and_never_worse_than_uniform() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xa000 + case);
        let len = rng.gen_range(2..40);
        let outputs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..5_000_000)).collect();
        let reducer_frac = rng.gen_range(0.1f64..1.0);
        let skew = rng.gen_range(1.0f64..4.0);
        let reducers = ((outputs.len() as f64 * reducer_frac) as usize).clamp(1, outputs.len());
        let plan = plan_aggregation(&outputs, reducers, skew);
        plan.validate();
        assert!(plan.reduce_imbalance() <= skew + 1e-6, "case {case}");
        // Placement on the richest nodes can't lose to canonical placement
        // at the same reducer count with uniform shares.
        let naive = uniform_baseline_traffic(&outputs, reducers);
        let placed_uniform = plan_aggregation(&outputs, reducers, 1.0);
        assert!(placed_uniform.est_traffic <= naive, "case {case}");
        // Weighted shares can't exceed the placed-uniform traffic by more
        // than rounding.
        assert!(
            plan.est_traffic <= placed_uniform.est_traffic + reducers as u64,
            "case {case}"
        );
    }
}

#[test]
fn metastore_roundtrips_any_array() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xb000 + case);
        let dfs = gen_dfs(&mut rng);
        let shard = rng.gen_range(1usize..20);
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let dir = std::env::temp_dir().join(format!("datanet-prop-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        MetaStore::save(&arr, &dir, shard).expect("save");
        let mut store = MetaStore::open(&dir, 2).expect("open");
        assert_eq!(store.manifest().blocks, arr.len(), "case {case}");
        for s in 0..20u64 {
            assert_eq!(
                store.view(SubDatasetId(s)).expect("view"),
                arr.view(SubDatasetId(s)),
                "case {case}"
            );
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn replicated_store_answers_every_query_like_memory() {
    // save_replicated → open_replicated is a faithful round-trip: the
    // persisted store answers *every* membership and size query — all
    // blocks × all sub-datasets — identically to the in-memory array, and
    // every assembled view is equal too. Replication factor, shard size
    // and cache pressure vary per case; none may change an answer.
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xe000 + case);
        let dfs = gen_dfs(&mut rng);
        let shard = rng.gen_range(1usize..20);
        let replicas = rng.gen_range(1usize..4);
        let cache = rng.gen_range(0usize..4);
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let base =
            std::env::temp_dir().join(format!("datanet-repl-prop-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dirs: Vec<std::path::PathBuf> =
            (0..replicas).map(|i| base.join(format!("r{i}"))).collect();
        let refs: Vec<&std::path::Path> = dirs.iter().map(|d| d.as_path()).collect();
        MetaStore::save_replicated(&arr, &refs, shard).expect("save");
        let mut store = MetaStore::open_replicated(&refs, cache).expect("open");
        assert_eq!(store.manifest().blocks, arr.len(), "case {case}");
        for s in 0..20u64 {
            let s = SubDatasetId(s);
            for i in 0..arr.len() {
                let b = BlockId(i as u32);
                assert_eq!(
                    store.query(b, s).expect("query"),
                    arr.query(b, s),
                    "case {case}: query({i}, {s:?}) diverged after the round-trip"
                );
            }
            assert_eq!(store.view(s).expect("view"), arr.view(s), "case {case}");
        }
        // The store never had to repair, fail over or degrade anything.
        assert!(!store.health().any(), "case {case}: {:?}", store.health());
        std::fs::remove_dir_all(&base).expect("cleanup");
    }
}

#[test]
fn degraded_bloom_estimates_respect_equation6_envelope() {
    // Degradation-ladder rung 2: when a shard's full copy is lost and the
    // bloom-only summary answers instead, the Equation 6 estimate
    // `Z = Σ_{τ₁}|s∩b| + δ·|τ₂|` must stay within the per-block envelope
    // `|Z − T| ≤ Σ_{b∈τ₂} |truth_b − δ|` — the identity that holds whenever
    // τ₁ entries are ground truth and τ₂ has no false negatives.
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xd000 + case);
        // Seeded Zipf workload: skewed sub-dataset popularity, the regime
        // the paper's α-separation is designed for.
        let subdatasets = rng.gen_range(10usize..30);
        let zipf = datanet_stats::Zipf::new(subdatasets, rng.gen_range(0.8f64..1.6));
        let record_count = rng.gen_range(100..500);
        let records: Vec<Record> = (0..record_count)
            .map(|i| {
                Record::new(
                    SubDatasetId(zipf.sample(&mut rng) as u64 - 1),
                    i as u64,
                    rng.gen_range(50u32..500),
                    i as u64,
                )
            })
            .collect();
        let dfs = Dfs::write_dataset(
            DfsConfig {
                block_size: 2_000,
                replication: 2,
                topology: Topology::single_rack(rng.gen_range(2u32..8)),
                seed: rng.gen::<u64>(),
            },
            records,
            &datanet_dfs::RandomPlacement,
        );
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let dir = std::env::temp_dir().join(format!("datanet-rung2-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        MetaStore::save(&arr, &dir, 2).expect("save");
        let mut store = MetaStore::open(&dir, 4).expect("open");
        // Lose every other shard's full copy; summaries stay intact, so
        // those shards answer from rung 2.
        for i in (0..store.manifest().shard_count()).step_by(2) {
            std::fs::write(dir.join(format!("shard-{i:04}.json")), b"corrupt").unwrap();
        }
        for s in 0..subdatasets as u64 {
            let s = SubDatasetId(s);
            let deg = store.view_degraded(s);
            assert!(
                deg.unknown_blocks().is_empty(),
                "case {case}: summaries keep every shard off rung 3"
            );
            let truth = dfs.subdataset_distribution(s);
            // No false negatives through the summary path: every block
            // really holding `s` is somewhere in the view.
            for b in dfs.blocks() {
                if truth[b.id().index()] > 0 {
                    assert!(
                        deg.rung_of(b.id()).is_some(),
                        "case {case}: block {:?} with {} bytes of {s:?} dropped",
                        b.id(),
                        truth[b.id().index()]
                    );
                }
            }
            // τ₁ must still be ground truth under degradation.
            for &(b, sz) in deg.view().exact() {
                assert_eq!(sz, truth[b.index()], "case {case}");
            }
            let z = deg.view().estimated_total() as i128;
            let t = dfs.subdataset_total(s) as i128;
            let delta = deg.view().delta() as i128;
            let envelope: i128 = deg
                .view()
                .bloom()
                .iter()
                .map(|b| (truth[b.index()] as i128 - delta).abs())
                .sum();
            assert!(
                (z - t).abs() <= envelope,
                "case {case}, {s:?}: |Z−T| = {} exceeds Σ|truth−δ| = {envelope}",
                (z - t).abs()
            );
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn dfs_write_preserves_bytes_and_order() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xc000 + case);
        let dfs = gen_dfs(&mut rng);
        // Total bytes conserved and timestamps non-decreasing across blocks.
        let mut last_ts = 0;
        let mut total = 0u64;
        for b in dfs.blocks() {
            for r in b.records() {
                assert!(r.timestamp >= last_ts, "case {case}");
                last_ts = r.timestamp;
                total += r.size as u64;
            }
        }
        assert_eq!(total, dfs.total_bytes(), "case {case}");
    }
}
