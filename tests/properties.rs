//! Property-based tests (proptest) over the core data structures and
//! algorithms: invariants that must hold for *any* input, not just the
//! calibrated experiment datasets.

use datanet::planner::BalancePolicy;
use datanet::{
    plan_aggregation, uniform_baseline_traffic, Algorithm1, BloomFilter, Buckets, ElasticMap,
    ElasticMapArray, FordFulkersonPlanner, MetaStore, Separation, SizeInfo,
};
use datanet_dfs::{Block, BlockId, Dfs, DfsConfig, Record, SubDatasetId, Topology};
use datanet_stats::GammaDist;
use proptest::prelude::*;

/// Strategy: a random small block of records.
fn arb_block() -> impl Strategy<Value = Block> {
    prop::collection::vec((0u64..40, 1u32..5_000, any::<u64>()), 1..200).prop_map(|specs| {
        let records = specs
            .into_iter()
            .enumerate()
            .map(|(i, (s, size, seed))| Record::new(SubDatasetId(s), i as u64, size, seed))
            .collect();
        Block::new(BlockId(0), records)
    })
}

/// Strategy: a random tiny DFS.
fn arb_dfs() -> impl Strategy<Value = Dfs> {
    (
        prop::collection::vec((0u64..20, 50u32..500), 20..400),
        2u32..12,
        1usize..4,
        any::<u64>(),
    )
        .prop_map(|(specs, nodes, replication, seed)| {
            let records = specs
                .into_iter()
                .enumerate()
                .map(|(i, (s, size))| Record::new(SubDatasetId(s), i as u64, size, i as u64));
            Dfs::write_dataset(
                DfsConfig {
                    block_size: 2_000,
                    replication,
                    topology: Topology::single_rack(nodes),
                    seed,
                },
                records,
                &datanet_dfs::RandomPlacement,
            )
        })
}

proptest! {
    #[test]
    fn bloom_filter_has_no_false_negatives(ids in prop::collection::hash_set(any::<u64>(), 1..500)) {
        let mut f = BloomFilter::with_rate(ids.len(), 0.01);
        for &id in &ids {
            f.insert(SubDatasetId(id));
        }
        for &id in &ids {
            prop_assert!(f.contains(SubDatasetId(id)));
        }
    }

    #[test]
    fn elasticmap_never_reports_present_as_absent(block in arb_block(), alpha in 0.0f64..=1.0) {
        let map = ElasticMap::build(&block, &Separation::Alpha(alpha));
        for (&id, &size) in block.subdataset_sizes().iter() {
            prop_assert!(size > 0);
            prop_assert_ne!(map.query(id), SizeInfo::Absent, "lost {}", id);
        }
    }

    #[test]
    fn elasticmap_exact_entries_are_ground_truth(block in arb_block(), alpha in 0.0f64..=1.0) {
        let map = ElasticMap::build(&block, &Separation::Alpha(alpha));
        let truth = block.subdataset_sizes();
        for (id, size) in map.exact_entries() {
            prop_assert_eq!(truth[&id], size);
        }
    }

    #[test]
    fn elasticmap_achieves_requested_alpha(block in arb_block(), alpha in 0.0f64..=1.0) {
        let map = ElasticMap::build(&block, &Separation::Alpha(alpha));
        prop_assert!(map.achieved_alpha() >= alpha - 1e-9);
        prop_assert_eq!(map.distinct(), block.subdataset_sizes().len());
    }

    #[test]
    fn bucket_threshold_selects_a_superset_of_top_quota(
        sizes in prop::collection::vec(1u64..200_000, 1..300),
        quota_frac in 0.0f64..=1.0,
    ) {
        let mut counter = datanet::BucketCounter::new(Buckets::paper());
        for (i, &s) in sizes.iter().enumerate() {
            counter.record(SubDatasetId(i as u64), s);
        }
        let quota = (quota_frac * sizes.len() as f64).ceil() as usize;
        let threshold = counter.dominance_threshold(quota);
        let selected = sizes.iter().filter(|&&s| s >= threshold).count();
        prop_assert!(selected >= quota.min(sizes.len()),
            "quota {} but only {} selected at threshold {}", quota, selected, threshold);
    }

    #[test]
    fn equation6_estimate_includes_all_exact_mass(dfs in arb_dfs(), s in 0u64..20) {
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let view = arr.view(SubDatasetId(s));
        let exact_sum: u64 = view.exact().iter().map(|&(_, b)| b).sum();
        prop_assert!(view.estimated_total() >= exact_sum);
        // Every τ1/τ2 block must really be a block of the DFS.
        for b in view.blocks() {
            prop_assert!(b.index() < dfs.block_count());
        }
    }

    #[test]
    fn algorithm1_assigns_scope_exactly_once(dfs in arb_dfs(), s in 0u64..20,
                                             literal in any::<bool>()) {
        let arr = ElasticMapArray::build(&dfs, &Separation::All);
        let view = arr.view(SubDatasetId(s));
        let policy = if literal { BalancePolicy::BestFitTerminal } else { BalancePolicy::PacedGreedy };
        let plan = Algorithm1::with_policy(dfs.namenode(), &view, policy).plan_balanced();
        prop_assert_eq!(plan.assigned_blocks(), view.block_count());
        let mut seen = std::collections::HashSet::new();
        for n in 0..plan.node_count() {
            for &b in plan.tasks_of(datanet_dfs::NodeId(n as u32)) {
                prop_assert!(seen.insert(b));
            }
        }
        prop_assert_eq!(plan.workloads().iter().sum::<u64>(), view.estimated_total());
    }

    #[test]
    fn ford_fulkerson_plans_are_local_and_complete(dfs in arb_dfs(), s in 0u64..20) {
        let arr = ElasticMapArray::build(&dfs, &Separation::All);
        let view = arr.view(SubDatasetId(s));
        let plan = FordFulkersonPlanner::new(&dfs, &view).plan();
        prop_assert_eq!(plan.assigned_blocks(), view.block_count());
        for n in 0..plan.node_count() {
            for &b in plan.tasks_of(datanet_dfs::NodeId(n as u32)) {
                prop_assert!(dfs.namenode().is_local(b, datanet_dfs::NodeId(n as u32)));
            }
        }
        // Fractional optimum is a valid lower bound.
        let t = FordFulkersonPlanner::new(&dfs, &view).fractional_optimum();
        prop_assert!(plan.max_workload() >= t || view.block_count() == 0);
    }

    #[test]
    fn gamma_cdf_is_monotone_and_bounded(shape in 0.1f64..20.0, scale in 0.1f64..50.0) {
        let g = GammaDist::new(shape, scale);
        let mut prev = 0.0;
        for i in 0..50 {
            let x = i as f64 * scale;
            let c = g.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn aggregation_plan_is_valid_and_never_worse_than_uniform(
        outputs in prop::collection::vec(0u64..5_000_000, 2..40),
        reducer_frac in 0.1f64..=1.0,
        skew in 1.0f64..4.0,
    ) {
        let reducers = ((outputs.len() as f64 * reducer_frac) as usize).clamp(1, outputs.len());
        let plan = plan_aggregation(&outputs, reducers, skew);
        plan.validate();
        prop_assert!(plan.reduce_imbalance() <= skew + 1e-6);
        // Placement on the richest nodes can't lose to canonical placement
        // at the same reducer count with uniform shares.
        let naive = uniform_baseline_traffic(&outputs, reducers);
        let placed_uniform = plan_aggregation(&outputs, reducers, 1.0);
        prop_assert!(placed_uniform.est_traffic <= naive);
        // Weighted shares can't exceed the placed-uniform traffic by more
        // than rounding.
        prop_assert!(plan.est_traffic <= placed_uniform.est_traffic + reducers as u64);
    }

    #[test]
    fn metastore_roundtrips_any_array(dfs in arb_dfs(), shard in 1usize..20, case in 0u64..1_000_000) {
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let dir = std::env::temp_dir().join(format!(
            "datanet-prop-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        MetaStore::save(&arr, &dir, shard).expect("save");
        let mut store = MetaStore::open(&dir, 2).expect("open");
        prop_assert_eq!(store.manifest().blocks, arr.len());
        for s in 0..20u64 {
            prop_assert_eq!(store.view(SubDatasetId(s)).expect("view"), arr.view(SubDatasetId(s)));
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn dfs_write_preserves_bytes_and_order(dfs in arb_dfs()) {
        // Total bytes conserved and timestamps non-decreasing across blocks.
        let mut last_ts = 0;
        let mut total = 0u64;
        for b in dfs.blocks() {
            for r in b.records() {
                prop_assert!(r.timestamp >= last_ts);
                last_ts = r.timestamp;
                total += r.size as u64;
            }
        }
        prop_assert_eq!(total, dfs.total_bytes());
    }
}
