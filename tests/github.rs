//! The GitHub experiment's distinctive properties (Section V-A-4 /
//! Figure 8): an imbalanced but unclustered sub-dataset still benefits from
//! DataNet, just less than the clustered movie data.

use datanet::{ElasticMapArray, Separation};
use datanet_analytics::profiles::top_k_profile;
use datanet_bench::{github_dataset, movie_dataset, NODES};
use datanet_mapreduce::{
    run_analysis, run_selection, AnalysisConfig, DataNetScheduler, LocalityScheduler,
    SelectionConfig,
};
use datanet_workloads::EventType;

#[test]
fn issue_events_are_spread_not_clustered() {
    let dfs = github_dataset(NODES);
    let dist = dfs.subdataset_distribution(EventType::Issue.id());
    let total: u64 = dist.iter().sum();
    assert!(total > 0);
    // No 30-block window may dominate the way the movie burst does.
    let window: u64 = dist.windows(30).map(|w| w.iter().sum()).max().unwrap();
    assert!(
        (window as f64) < 0.5 * total as f64,
        "IssueEvent clustered: best 30-block window holds {window}/{total}"
    );
}

#[test]
fn issue_distribution_is_still_imbalanced_over_blocks() {
    let dfs = github_dataset(NODES);
    let dist = dfs.subdataset_distribution(EventType::Issue.id());
    let nonzero: Vec<u64> = dist.iter().copied().filter(|&b| b > 0).collect();
    let max = *nonzero.iter().max().unwrap();
    let min = *nonzero.iter().min().unwrap();
    assert!(
        max > 3 * min,
        "per-block IssueEvent sizes too uniform: {min}..{max}"
    );
}

#[test]
fn datanet_still_helps_but_less_than_on_movies() {
    let improvement = |dfs: &datanet_dfs::Dfs, s: datanet_dfs::SubDatasetId| {
        let truth = dfs.subdataset_distribution(s);
        let sel = SelectionConfig::default();
        let ana = AnalysisConfig::default();
        let mut base = LocalityScheduler::new(dfs);
        let without = run_selection(dfs, &truth, &mut base, &sel);
        let view = ElasticMapArray::build(dfs, &Separation::Alpha(0.3)).view(s);
        let mut dn = DataNetScheduler::new(dfs, &view);
        let with = run_selection(dfs, &truth, &mut dn, &sel);
        let jw = run_analysis(&without.per_node_bytes, &top_k_profile(), &ana);
        let jd = run_analysis(&with.per_node_bytes, &top_k_profile(), &ana);
        1.0 - jd.map_summary().max() / jw.map_summary().max()
    };

    let gh = github_dataset(NODES);
    let gh_improvement = improvement(&gh, EventType::Issue.id());
    let (movies, catalog) = movie_dataset(NODES);
    let movie_improvement = improvement(&movies, catalog.most_reviewed());

    assert!(
        gh_improvement > 0.0,
        "DataNet should still shorten the longest map, got {gh_improvement}"
    );
    assert!(
        movie_improvement > gh_improvement,
        "clustered data should benefit more: movies {movie_improvement} vs github {gh_improvement}"
    );
}

#[test]
fn event_type_mix_is_heavy_tailed() {
    let dfs = github_dataset(NODES);
    let push: u64 = dfs.subdataset_total(EventType::Push.id());
    let fork_apply: u64 = dfs.subdataset_total(EventType::ForkApply.id());
    assert!(
        push > 50 * fork_apply.max(1),
        "push {push} vs forkapply {fork_apply}"
    );
}
