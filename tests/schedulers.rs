//! Cross-scheduler integration tests: coverage, disjointness, policy
//! comparisons and the migration baseline.

use datanet::planner::BalancePolicy;
use datanet::{Algorithm1, ElasticMapArray, FordFulkersonPlanner, Separation};
use datanet_bench::{movie_dataset, NODES};
use datanet_cluster::NodeSpec;
use datanet_dfs::BlockId;
use datanet_mapreduce::{
    rebalance, run_selection, DataNetScheduler, LocalityScheduler, MapScheduler, PlannedScheduler,
    SelectionConfig,
};
use std::collections::HashSet;

#[test]
fn every_scheduler_covers_its_scope_exactly_once() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);

    let drain = |sched: &mut dyn MapScheduler| {
        let mut seen: HashSet<BlockId> = HashSet::new();
        let mut node = 0u32;
        loop {
            let mut progressed = false;
            for _ in 0..NODES {
                node = (node + 1) % NODES;
                if let Some((b, _)) = sched.next_task(datanet_dfs::NodeId(node)) {
                    assert!(seen.insert(b), "block {b} issued twice");
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        seen
    };

    let mut locality = LocalityScheduler::new(&dfs);
    assert_eq!(drain(&mut locality).len(), dfs.block_count());

    let mut dn = DataNetScheduler::new(&dfs, &view);
    assert_eq!(drain(&mut dn).len(), view.block_count());

    let plan = FordFulkersonPlanner::new(&dfs, &view).plan();
    let mut planned = PlannedScheduler::new(&plan, dfs.namenode());
    assert_eq!(drain(&mut planned).len(), view.block_count());
}

#[test]
fn paced_policy_beats_literal_best_fit() {
    // The deviation documented in DESIGN.md, quantified: under live pulls
    // the paced policy balances markedly better than the paper's literal
    // argmin rule.
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let sel = SelectionConfig::default();

    let mut paced = DataNetScheduler::new(&dfs, &view);
    let p = run_selection(&dfs, &truth, &mut paced, &sel);
    let mut literal = DataNetScheduler::with_policy(&dfs, &view, BalancePolicy::BestFitTerminal);
    let l = run_selection(&dfs, &truth, &mut literal, &sel);
    assert!(
        p.imbalance() < l.imbalance(),
        "paced {} !< literal {}",
        p.imbalance(),
        l.imbalance()
    );
}

#[test]
fn ford_fulkerson_respects_locality_and_balances() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let view = ElasticMapArray::build(&dfs, &Separation::All).view(hot);
    let planner = FordFulkersonPlanner::new(&dfs, &view);
    let plan = planner.plan();
    assert_eq!(plan.locality_fraction(), 1.0);
    assert_eq!(plan.assigned_blocks(), view.block_count());
    // Within 50% of the fractional lower bound (rounding + locality).
    let t = planner.fractional_optimum();
    assert!(
        plan.max_workload() as f64 <= t as f64 * 1.5,
        "max {} vs fractional optimum {t}",
        plan.max_workload()
    );
}

#[test]
fn algorithm1_plans_match_their_scheduler_runs_in_total() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let view = ElasticMapArray::build(&dfs, &Separation::All).view(hot);
    let plan = Algorithm1::new(&dfs, &view).plan_balanced();
    assert_eq!(plan.workloads().iter().sum::<u64>(), view.estimated_total());
}

#[test]
fn migration_baseline_reproduces_the_papers_cost() {
    // Section V-A-4: rebalancing the locality outcome moves a substantial
    // fraction of the data and touches most nodes.
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let mut base = LocalityScheduler::new(&dfs);
    let without = run_selection(&dfs, &truth, &mut base, &SelectionConfig::default());
    let mig = rebalance(&without.per_node_bytes, &NodeSpec::marmot());
    assert!(
        mig.fraction > 0.15,
        "expected substantial migration, got {:.3}",
        mig.fraction
    );
    assert!(
        mig.nodes_touched as u32 > NODES / 2,
        "migration should touch most nodes, got {}",
        mig.nodes_touched
    );
    // Post-migration partitions are balanced.
    let max = *mig.balanced.iter().max().unwrap();
    let mean = mig.balanced.iter().sum::<u64>() / mig.balanced.len() as u64;
    assert!((max as f64) < mean as f64 * 1.05);
}

#[test]
fn low_alpha_costs_balance() {
    // Figure 10's left edge: bloom-only meta-data cannot distinguish block
    // weights, so balance degrades toward the baseline.
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let sel = SelectionConfig::default();
    let good = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let poor = ElasticMapArray::build(&dfs, &Separation::BloomOnly).view(hot);
    let mut dn_good = DataNetScheduler::new(&dfs, &good);
    let g = run_selection(&dfs, &truth, &mut dn_good, &sel);
    let mut dn_poor = DataNetScheduler::new(&dfs, &poor);
    let p = run_selection(&dfs, &truth, &mut dn_poor, &sel);
    assert!(
        g.imbalance() < p.imbalance(),
        "alpha=0.3 {} !< bloom-only {}",
        g.imbalance(),
        p.imbalance()
    );
}
