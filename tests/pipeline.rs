//! End-to-end integration: generate → store → scan → schedule → execute,
//! asserting the paper's comparative claims hold in the reproduction —
//! plus the checkpointed pipeline executor's crash/resume properties.

use datanet::{checkpoint, ElasticMapArray, Separation};
use datanet_analytics::profiles::{
    histogram_profile, moving_average_profile, top_k_profile, word_count_profile,
};
use datanet_analytics::{
    join_word_count_pipeline, word_count_pipeline, CrashPoint, Pipeline, PipelineEnv,
};
use datanet_bench::{movie_dataset, NODES};
use datanet_check::Scenario;
use datanet_dfs::SubDatasetId;
use datanet_integration::testkit::{expected_resume_from, write_prefixes, ReplicaDirs as TmpDirs};
use datanet_mapreduce::{
    run_analysis, run_selection, AnalysisConfig, DataNetScheduler, LocalityScheduler,
    SelectionConfig,
};
use datanet_obs::Recorder;

/// Run selection under both schedulers once (shared by several tests).
fn both_selections() -> (
    datanet_mapreduce::SelectionOutcome,
    datanet_mapreduce::SelectionOutcome,
) {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let sel = SelectionConfig::default();
    let mut base = LocalityScheduler::new(&dfs);
    let without = run_selection(&dfs, &truth, &mut base, &sel);
    let mut dn = DataNetScheduler::new(&dfs, &view);
    let with = run_selection(&dfs, &truth, &mut dn, &sel);
    (without, with)
}

#[test]
fn datanet_improves_every_job_makespan() {
    let (without, with) = both_selections();
    let ana = AnalysisConfig::default();
    for job in [
        moving_average_profile(),
        word_count_profile(),
        histogram_profile(),
        top_k_profile(),
    ] {
        let jw = run_analysis(&without.per_node_bytes, &job, &ana);
        let jd = run_analysis(&with.per_node_bytes, &job, &ana);
        assert!(
            jd.makespan_secs < jw.makespan_secs,
            "{}: with {} !< without {}",
            job.name,
            jd.makespan_secs,
            jw.makespan_secs
        );
    }
}

#[test]
fn improvement_grows_with_compute_intensity() {
    // Figure 5(a)'s ordering: MovingAverage < WordCount <= Histogram < TopK.
    let (without, with) = both_selections();
    let ana = AnalysisConfig::default();
    let improvement = |job: &datanet_mapreduce::JobProfile| {
        let jw = run_analysis(&without.per_node_bytes, job, &ana);
        let jd = run_analysis(&with.per_node_bytes, job, &ana);
        1.0 - jd.makespan_secs / jw.makespan_secs
    };
    let ma = improvement(&moving_average_profile());
    let wc = improvement(&word_count_profile());
    let tk = improvement(&top_k_profile());
    assert!(ma < wc, "MovingAverage {ma} !< WordCount {wc}");
    assert!(wc < tk, "WordCount {wc} !< TopK {tk}");
    // Magnitudes in the paper's neighbourhood (20%–50%).
    assert!((0.10..0.60).contains(&ma), "MA improvement {ma}");
    assert!((0.25..0.60).contains(&tk), "TopK improvement {tk}");
}

#[test]
fn workload_conservation_across_schedulers() {
    let (without, with) = both_selections();
    assert_eq!(
        without.per_node_bytes.iter().sum::<u64>(),
        with.per_node_bytes.iter().sum::<u64>(),
        "both schedulers must filter exactly the same sub-dataset bytes"
    );
}

#[test]
fn datanet_balances_and_baseline_does_not() {
    let (without, with) = both_selections();
    assert!(
        without.imbalance() > 1.5,
        "clustered data should imbalance the baseline, got {}",
        without.imbalance()
    );
    assert!(
        with.imbalance() < 1.15,
        "DataNet should balance within ~15%, got {}",
        with.imbalance()
    );
}

#[test]
fn datanet_reads_fewer_blocks() {
    // ElasticMap lets the selection skip blocks without target data.
    let (without, with) = both_selections();
    assert!(with.bytes_read <= without.bytes_read);
    assert!(with.total_tasks <= without.total_tasks);
}

#[test]
fn shuffle_gap_shrinks_with_datanet() {
    // Figure 7: without DataNet the shuffle phase takes several times
    // longer because reducers wait for straggler maps.
    let (without, with) = both_selections();
    let ana = AnalysisConfig::default();
    let job = word_count_profile();
    let jw = run_analysis(&without.per_node_bytes, &job, &ana);
    let jd = run_analysis(&with.per_node_bytes, &job, &ana);
    assert!(
        jw.shuffle_summary().max() > 2.0 * jd.shuffle_summary().max(),
        "shuffle without {} vs with {}",
        jw.shuffle_summary().max(),
        jd.shuffle_summary().max()
    );
}

/// Satellite property, integration level: for *every* stage of a
/// multi-stage pipeline and *every* write prefix of that stage's
/// checkpoint plan, a crash at that point leaves the previous stage
/// durable, and `Pipeline::resume` reproduces the uninterrupted run's
/// data product and checkpoint ledger exactly — including under scripted
/// node crashes and degraded-cluster re-planning (seeded fault plans).
#[test]
fn crash_at_every_stage_and_write_prefix_resumes_exactly() {
    for seed in [3u64, 9, 17] {
        let sc = Scenario::from_seed(seed);
        let dfs = sc.build_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(sc.alpha));
        let other = SubDatasetId((sc.target + 1) % sc.subdatasets);
        let pipe = Pipeline::new(join_word_count_pipeline(sc.target_id(), other));
        let mk_env = || {
            let mut env = PipelineEnv::new(&dfs, &arr);
            env.faults = sc.has_faults().then(|| sc.fault_config());
            env
        };

        let baseline_dirs = TmpDirs::new("baseline", 2);
        let baseline = pipe
            .run(&mut mk_env(), &baseline_dirs.paths(), &Recorder::off())
            .expect("uninterrupted run");
        let baseline_ledger = checkpoint::ledger(&baseline_dirs.paths()).expect("baseline ledger");
        assert_eq!(baseline_ledger.len(), pipe.len());

        for stage in 0..pipe.len() {
            // Every checkpoint plan writes payload + stage manifest + live
            // manifest; sweep every prefix including "all of them landed".
            for prefix in write_prefixes(3) {
                let dirs = TmpDirs::new("crash", 2);
                let int = pipe
                    .run_interrupted(
                        &mut mk_env(),
                        &dirs.paths(),
                        CrashPoint {
                            stage,
                            write_prefix: prefix as u64,
                        },
                        &Recorder::off(),
                    )
                    .expect("interrupted run");
                assert_eq!(int.crash_stage, stage);
                assert_eq!(int.applied_writes, prefix);

                let resumed = pipe
                    .resume(&mut mk_env(), &dirs.paths(), &Recorder::off())
                    .expect("resume after crash");
                assert_eq!(
                    resumed.resumed_from,
                    expected_resume_from(stage, int.applied_writes, int.plan_writes),
                    "seed {seed}: crash {prefix}/3 writes into stage {stage}"
                );
                assert_eq!(
                    resumed.data_fingerprint(),
                    baseline.data_fingerprint(),
                    "seed {seed}: crash {prefix}/3 writes into stage {stage} \
                     changed the data product"
                );
                assert_eq!(
                    checkpoint::ledger(&dirs.paths()).expect("resumed ledger"),
                    baseline_ledger,
                    "seed {seed}: crash {prefix}/3 writes into stage {stage} \
                     changed the durable ledger"
                );
            }
        }
    }
}

/// Resume on a store with no durable checkpoint is a fresh run; resume on
/// a fully-durable store re-executes nothing and keeps the output.
#[test]
fn resume_edges_fresh_store_and_complete_store() {
    let sc = Scenario::from_seed(5);
    let dfs = sc.build_dfs();
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(sc.alpha));
    let pipe = Pipeline::new(word_count_pipeline(sc.target_id()));

    let dirs = TmpDirs::new("edges", 2);
    let mut env = PipelineEnv::new(&dfs, &arr);
    let fresh = pipe
        .resume(&mut env, &dirs.paths(), &Recorder::off())
        .expect("resume on empty dirs runs fresh");
    assert_eq!(fresh.resumed_from, None);
    assert_eq!(fresh.stages.len(), pipe.len());

    let again = pipe
        .resume(&mut env, &dirs.paths(), &Recorder::off())
        .expect("resume on a complete store");
    assert_eq!(again.resumed_from, Some(pipe.len() as u64 - 1));
    assert!(again.stages.is_empty(), "nothing left to re-execute");
    assert_eq!(again.output, fresh.output);
}

/// A differently-named pipeline refuses another pipeline's checkpoints
/// instead of silently resuming into the wrong computation.
#[test]
fn resume_rejects_a_foreign_pipeline_store() {
    let sc = Scenario::from_seed(5);
    let dfs = sc.build_dfs();
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(sc.alpha));
    let dirs = TmpDirs::new("foreign", 2);
    let mut env = PipelineEnv::new(&dfs, &arr);
    Pipeline::new(word_count_pipeline(sc.target_id()))
        .run(&mut env, &dirs.paths(), &Recorder::off())
        .expect("word-count run");
    let err = Pipeline::new(join_word_count_pipeline(
        sc.target_id(),
        SubDatasetId((sc.target + 1) % sc.subdatasets),
    ))
    .resume(&mut env, &dirs.paths(), &Recorder::off())
    .expect_err("foreign checkpoints must be rejected");
    assert!(format!("{err}").contains("word-count"), "{err}");
}

/// The movie-dataset word count runs as a checkpointed pipeline: the
/// durable ledger is the full stage sequence and the traced run matches
/// the untraced one on the data plane.
#[test]
fn movie_word_count_pipeline_checkpoints_and_traces() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let pipe = Pipeline::new(word_count_pipeline(hot));
    let dirs = TmpDirs::new("movies", 2);
    let mut env = PipelineEnv::new(&dfs, &arr);
    let off = pipe
        .run(&mut env, &dirs.paths(), &Recorder::off())
        .expect("untraced run");
    assert!(off.stages.iter().all(|s| s.obs.is_none()));
    assert!(off.output.aggregates.iter().any(|kv| kv.value > 0.0));

    let ledger = checkpoint::ledger(&dirs.paths()).expect("ledger");
    assert_eq!(ledger.len(), pipe.len());
    for (k, m) in ledger.iter().enumerate() {
        assert_eq!(m.last_completed_operation, k as u64);
        assert_eq!(m.pipeline, "word-count");
    }

    let rec = Recorder::new();
    let dirs2 = TmpDirs::new("movies-traced", 2);
    let on = pipe
        .run(&mut env, &dirs2.paths(), &rec)
        .expect("traced run");
    assert!(on.stages.iter().all(|s| s.obs.is_some()));
    assert_eq!(on.data_fingerprint(), off.data_fingerprint());
    let data = rec.take();
    assert_eq!(data.unclosed_spans(), 0);
    assert!(
        data.spans.iter().any(|s| s.name == "commit"),
        "checkpoint commits must appear on the observability plane"
    );
}

#[test]
fn map_time_spread_mirrors_byte_spread() {
    // Figure 6: per-node map times under the imbalanced selection spread by
    // roughly the byte ratio for compute-bound jobs.
    let (without, _) = both_selections();
    let ana = AnalysisConfig::default();
    let rep = run_analysis(&without.per_node_bytes, &top_k_profile(), &ana);
    let time_ratio = rep.map_summary().max() / rep.map_summary().min();
    assert!(
        time_ratio > 3.0,
        "expected a pronounced straggler, got {time_ratio}"
    );
}
