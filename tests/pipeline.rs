//! End-to-end integration: generate → store → scan → schedule → execute,
//! asserting the paper's comparative claims hold in the reproduction.

use datanet::{ElasticMapArray, Separation};
use datanet_analytics::profiles::{
    histogram_profile, moving_average_profile, top_k_profile, word_count_profile,
};
use datanet_bench::{movie_dataset, NODES};
use datanet_mapreduce::{
    run_analysis, run_selection, AnalysisConfig, DataNetScheduler, LocalityScheduler,
    SelectionConfig,
};

/// Run selection under both schedulers once (shared by several tests).
fn both_selections() -> (
    datanet_mapreduce::SelectionOutcome,
    datanet_mapreduce::SelectionOutcome,
) {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let sel = SelectionConfig::default();
    let mut base = LocalityScheduler::new(&dfs);
    let without = run_selection(&dfs, &truth, &mut base, &sel);
    let mut dn = DataNetScheduler::new(&dfs, &view);
    let with = run_selection(&dfs, &truth, &mut dn, &sel);
    (without, with)
}

#[test]
fn datanet_improves_every_job_makespan() {
    let (without, with) = both_selections();
    let ana = AnalysisConfig::default();
    for job in [
        moving_average_profile(),
        word_count_profile(),
        histogram_profile(),
        top_k_profile(),
    ] {
        let jw = run_analysis(&without.per_node_bytes, &job, &ana);
        let jd = run_analysis(&with.per_node_bytes, &job, &ana);
        assert!(
            jd.makespan_secs < jw.makespan_secs,
            "{}: with {} !< without {}",
            job.name,
            jd.makespan_secs,
            jw.makespan_secs
        );
    }
}

#[test]
fn improvement_grows_with_compute_intensity() {
    // Figure 5(a)'s ordering: MovingAverage < WordCount <= Histogram < TopK.
    let (without, with) = both_selections();
    let ana = AnalysisConfig::default();
    let improvement = |job: &datanet_mapreduce::JobProfile| {
        let jw = run_analysis(&without.per_node_bytes, job, &ana);
        let jd = run_analysis(&with.per_node_bytes, job, &ana);
        1.0 - jd.makespan_secs / jw.makespan_secs
    };
    let ma = improvement(&moving_average_profile());
    let wc = improvement(&word_count_profile());
    let tk = improvement(&top_k_profile());
    assert!(ma < wc, "MovingAverage {ma} !< WordCount {wc}");
    assert!(wc < tk, "WordCount {wc} !< TopK {tk}");
    // Magnitudes in the paper's neighbourhood (20%–50%).
    assert!((0.10..0.60).contains(&ma), "MA improvement {ma}");
    assert!((0.25..0.60).contains(&tk), "TopK improvement {tk}");
}

#[test]
fn workload_conservation_across_schedulers() {
    let (without, with) = both_selections();
    assert_eq!(
        without.per_node_bytes.iter().sum::<u64>(),
        with.per_node_bytes.iter().sum::<u64>(),
        "both schedulers must filter exactly the same sub-dataset bytes"
    );
}

#[test]
fn datanet_balances_and_baseline_does_not() {
    let (without, with) = both_selections();
    assert!(
        without.imbalance() > 1.5,
        "clustered data should imbalance the baseline, got {}",
        without.imbalance()
    );
    assert!(
        with.imbalance() < 1.15,
        "DataNet should balance within ~15%, got {}",
        with.imbalance()
    );
}

#[test]
fn datanet_reads_fewer_blocks() {
    // ElasticMap lets the selection skip blocks without target data.
    let (without, with) = both_selections();
    assert!(with.bytes_read <= without.bytes_read);
    assert!(with.total_tasks <= without.total_tasks);
}

#[test]
fn shuffle_gap_shrinks_with_datanet() {
    // Figure 7: without DataNet the shuffle phase takes several times
    // longer because reducers wait for straggler maps.
    let (without, with) = both_selections();
    let ana = AnalysisConfig::default();
    let job = word_count_profile();
    let jw = run_analysis(&without.per_node_bytes, &job, &ana);
    let jd = run_analysis(&with.per_node_bytes, &job, &ana);
    assert!(
        jw.shuffle_summary().max() > 2.0 * jd.shuffle_summary().max(),
        "shuffle without {} vs with {}",
        jw.shuffle_summary().max(),
        jd.shuffle_summary().max()
    );
}

#[test]
fn map_time_spread_mirrors_byte_spread() {
    // Figure 6: per-node map times under the imbalanced selection spread by
    // roughly the byte ratio for compute-bound jobs.
    let (without, _) = both_selections();
    let ana = AnalysisConfig::default();
    let rep = run_analysis(&without.per_node_bytes, &top_k_profile(), &ana);
    let time_ratio = rep.map_summary().max() / rep.map_summary().min();
    assert!(
        time_ratio > 3.0,
        "expected a pronounced straggler, got {time_ratio}"
    );
}
