//! Integration tests for the deterministic simulation-check harness
//! (`datanet-check`): the fixed-seed corpus, the planted-bug self-test
//! the acceptance criteria demand, repro round-trips, and determinism
//! of the checker itself.

use datanet_check::{check_scenario, check_scenario_with, shrink, CheckOptions, Repro, Scenario};

/// Parse `tests/corpus/seeds.txt`: one integer seed per line, `#`
/// comments and blank lines ignored.
fn corpus_seeds() -> Vec<u64> {
    include_str!("corpus/seeds.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().expect("corpus lines are u64 seeds"))
        .collect()
}

/// Every corpus seed expands into a world that passes the full oracle
/// catalog. This is the regression net: a future PR that breaks byte
/// conservation, the Equation 6 envelope, planner bounds or traced-twin
/// purity fails here with the offending seed named.
#[test]
fn fixed_seed_corpus_passes() {
    let seeds = corpus_seeds();
    assert!(seeds.len() >= 48, "corpus should stay substantial");
    for seed in seeds {
        let (_, out) = datanet_check::check_seed(seed);
        assert!(
            out.passed(),
            "corpus seed {seed} violated: {:#?}",
            out.violations
        );
    }
}

/// The checker is itself deterministic: same seed, same verdict,
/// violation for violation — a prerequisite for seeds being shareable
/// bug reports.
#[test]
fn checker_is_deterministic() {
    for seed in [3u64, 17, 29] {
        let sc = Scenario::from_seed(seed);
        assert_eq!(check_scenario(&sc), check_scenario(&sc));
    }
}

/// Acceptance self-test: an off-by-one planted in Algorithm 1's credit
/// accounting (behind the test-only `plant_credit_skew` hook) must be
/// caught by the `greedy-conservation` oracle and shrunk to a world of
/// ≤ 8 blocks on ≤ 3 nodes that still exhibits it.
#[test]
fn planted_credit_bug_is_caught_and_shrunk() {
    let seed = 5u64;
    let sc = Scenario::from_seed(seed);
    assert!(
        check_scenario(&sc).passed(),
        "seed {seed} must be clean without the planted bug"
    );

    let opts = CheckOptions {
        credit_skew: 1,
        ..CheckOptions::default()
    };
    let out = check_scenario_with(&sc, &opts);
    assert!(
        out.violations
            .iter()
            .any(|v| v.oracle == "greedy-conservation"),
        "planted off-by-one not caught: {:#?}",
        out.violations
    );

    let shrunk = shrink(&sc, &opts).expect("a failing scenario must shrink");
    assert!(
        shrunk
            .outcome
            .violations
            .iter()
            .any(|v| v.oracle == "greedy-conservation"),
        "shrinking wandered off the original oracle"
    );
    assert!(
        shrunk.outcome.blocks <= 8,
        "repro still has {} blocks",
        shrunk.outcome.blocks
    );
    assert!(
        shrunk.outcome.nodes <= 3,
        "repro still has {} nodes",
        shrunk.outcome.nodes
    );
    assert!(shrunk.scenario.records <= sc.records);
    assert!(shrunk.scenario.nodes <= sc.nodes);
}

/// Acceptance self-test for the shuffle axis: a planted planner bug that
/// funnels every key range onto reducer 0 (behind the test-only
/// `plant_reducer_overload` hook) must be caught by the `reduce-skew`
/// oracle and shrunk to a world of ≤ 8 blocks on ≤ 3 nodes — three
/// reducers is the arithmetic floor where an all-on-one plan still
/// exceeds the fair-share bound.
#[test]
fn planted_reducer_overload_is_caught_and_shrunk() {
    let seed = 5u64;
    let sc = Scenario::from_seed(seed);
    assert!(
        check_scenario(&sc).passed(),
        "seed {seed} must be clean without the planted bug"
    );

    let opts = CheckOptions {
        overload_reducer: true,
        ..CheckOptions::default()
    };
    let out = check_scenario_with(&sc, &opts);
    assert!(
        out.violations.iter().any(|v| v.oracle == "reduce-skew"),
        "planted reducer overload not caught: {:#?}",
        out.violations
    );

    let shrunk = shrink(&sc, &opts).expect("a failing scenario must shrink");
    assert!(
        shrunk
            .outcome
            .violations
            .iter()
            .any(|v| v.oracle == "reduce-skew"),
        "shrinking wandered off the original oracle"
    );
    assert!(
        shrunk.outcome.blocks <= 8,
        "repro still has {} blocks",
        shrunk.outcome.blocks
    );
    assert!(
        shrunk.outcome.nodes <= 3,
        "repro still has {} nodes",
        shrunk.outcome.nodes
    );
}

/// Acceptance self-test for the serving axis: a planted cache-staleness
/// bug that makes the plan cache ignore epoch keys (behind the test-only
/// `PlanCache::plant_staleness` hook) must be caught by the
/// `serve-cache-coherence` oracle — a query completed after a scripted
/// ingest commit or node loss gets handed the pre-mutation plan, whose
/// digest no longer matches a fresh plan at the epoch the outcome claims
/// — and shrunk to a world of ≤ 8 blocks serving ≤ 3 tenants that still
/// exhibits it.
#[test]
fn planted_cache_staleness_bug_is_caught_and_shrunk() {
    let seed = 0u64;
    let sc = Scenario::from_seed(seed);
    assert!(
        check_scenario(&sc).passed(),
        "seed {seed} must be clean without the planted bug"
    );

    let opts = CheckOptions {
        stale_serve_cache: true,
        ..CheckOptions::default()
    };
    let out = check_scenario_with(&sc, &opts);
    assert!(
        out.violations
            .iter()
            .any(|v| v.oracle == "serve-cache-coherence"),
        "planted cache staleness not caught: {:#?}",
        out.violations
    );

    let shrunk = shrink(&sc, &opts).expect("a failing scenario must shrink");
    assert!(
        shrunk
            .outcome
            .violations
            .iter()
            .any(|v| v.oracle == "serve-cache-coherence"),
        "shrinking wandered off the original oracle"
    );
    assert!(
        shrunk.outcome.blocks <= 8,
        "repro still has {} blocks",
        shrunk.outcome.blocks
    );
    assert!(
        shrunk.scenario.serve.tenants <= 3,
        "repro still serves {} tenants",
        shrunk.scenario.serve.tenants
    );
    assert!(
        !shrunk.scenario.serve.events.is_empty(),
        "staleness needs at least one world mutation to be observable"
    );
}

/// A shrunk failure round-trips through a repro file and replays to the
/// same violations on a fresh process — the file alone is the bug report.
#[test]
fn repro_file_replays_identically() {
    let sc = Scenario::from_seed(5);
    let opts = CheckOptions {
        credit_skew: 1,
        ..CheckOptions::default()
    };
    let shrunk = shrink(&sc, &opts).expect("planted bug must fail");
    let repro = Repro {
        original_seed: 5,
        scenario: shrunk.scenario.clone(),
        options: opts,
        violations: shrunk.outcome.violations.clone(),
        flight: serde_json::Value::Null,
    };
    let path = std::env::temp_dir().join(format!(
        "datanet-simcheck-repro-{}.json",
        std::process::id()
    ));
    repro.save(&path).expect("save repro");
    let back = Repro::load(&path).expect("load repro");
    std::fs::remove_file(&path).ok();
    assert_eq!(back, repro);
    let replayed = back.replay();
    assert_eq!(replayed.violations, repro.violations);
}

/// With all-default options the harness finds nothing to shrink on a
/// passing seed — `shrink` refuses rather than minimising a non-failure.
#[test]
fn clean_seed_has_nothing_to_shrink() {
    let sc = Scenario::from_seed(11);
    assert!(shrink(&sc, &CheckOptions::default()).is_none());
}
