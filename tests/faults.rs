//! Fault-injection acceptance tests (ISSUE: fault-tolerant execution
//! engine): killing 1 of 8 nodes mid-selection must lose no data, stay
//! deterministic for a fixed seed, and leave DataNet's surviving nodes
//! better balanced than the locality baseline's.

use datanet::{ElasticMapArray, Separation};
use datanet_bench::movie_dataset;
use datanet_cluster::{FaultPlan, SimTime};
use datanet_dfs::SubDatasetId;
use datanet_mapreduce::{
    run_pipeline_faulty, run_selection, run_selection_faulty, AnalysisConfig, DataNetScheduler,
    FaultConfig, JobProfile, LocalityScheduler, MapScheduler, SelectionConfig, SelectionOutcome,
};

const NODES: u32 = 8;

fn scenario() -> (datanet_dfs::Dfs, SubDatasetId, Vec<u64>) {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    (dfs, hot, truth)
}

/// A crash of `node` halfway through the healthy phase of `probe`.
fn mid_phase_crash(
    dfs: &datanet_dfs::Dfs,
    truth: &[u64],
    probe: &mut dyn MapScheduler,
    node: usize,
) -> FaultPlan {
    let healthy = run_selection(dfs, truth, probe, &SelectionConfig::default());
    let crash_at = SimTime::from_micros(healthy.end.as_micros() / 2);
    assert!(crash_at > SimTime::ZERO, "phase must have real duration");
    FaultPlan::none(NODES as usize).crash(node, crash_at)
}

/// Max-over-mean imbalance across the *surviving* nodes only.
fn survivor_imbalance(out: &SelectionOutcome) -> f64 {
    let survivors: Vec<f64> = out
        .per_node_bytes
        .iter()
        .enumerate()
        .filter(|(n, _)| !out.faults.crashed_nodes.contains(n))
        .map(|(_, &b)| b as f64)
        .collect();
    let mean = survivors.iter().sum::<f64>() / survivors.len() as f64;
    survivors.iter().cloned().fold(0.0, f64::max) / mean
}

#[test]
fn killing_one_of_eight_loses_no_bytes() {
    let (dfs, hot, truth) = scenario();
    let total = dfs.subdataset_total(hot);

    // Locality baseline.
    let mut probe = LocalityScheduler::new(&dfs);
    let plan = mid_phase_crash(&dfs, &truth, &mut probe, 3);
    let mut sched = LocalityScheduler::new(&dfs);
    let out = run_selection_faulty(
        &dfs,
        &truth,
        &mut sched,
        &SelectionConfig::default(),
        &FaultConfig::new(plan),
    );
    assert_eq!(out.faults.crashed_nodes, vec![3]);
    assert_eq!(out.per_node_bytes[3], 0, "dead node keeps nothing");
    assert_eq!(
        out.per_node_bytes.iter().sum::<u64>(),
        total,
        "locality: every sub-dataset byte credited exactly once"
    );
    assert!(out.faults.requeued_tasks > 0);
    assert!(
        out.faults.unrecoverable_blocks.is_empty(),
        "3-way replication"
    );
    assert!(out.faults.abandoned_blocks.is_empty());

    // DataNet.
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let mut probe = DataNetScheduler::new(&dfs, &view);
    let plan = mid_phase_crash(&dfs, &truth, &mut probe, 3);
    let mut sched = DataNetScheduler::new(&dfs, &view);
    let out = run_selection_faulty(
        &dfs,
        &truth,
        &mut sched,
        &SelectionConfig::default(),
        &FaultConfig::new(plan),
    );
    assert_eq!(out.per_node_bytes[3], 0);
    assert_eq!(
        out.per_node_bytes.iter().sum::<u64>(),
        total,
        "datanet: every sub-dataset byte credited exactly once"
    );
}

#[test]
fn faulty_runs_are_deterministic_for_a_fixed_seed() {
    let (dfs, hot, truth) = scenario();
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let run = || {
        let plan = FaultPlan::random(NODES as usize, 0xFA17, 0.25, SimTime::from_secs(3));
        let mut sched = DataNetScheduler::new(&dfs, &view);
        run_selection_faulty(
            &dfs,
            &truth,
            &mut sched,
            &SelectionConfig::default(),
            &FaultConfig::new(plan),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same fault plan, same outcome");
    // And the plan itself is reproducible.
    assert_eq!(
        FaultPlan::random(8, 7, 0.5, SimTime::from_secs(1)),
        FaultPlan::random(8, 7, 0.5, SimTime::from_secs(1))
    );
}

#[test]
fn datanet_rebalances_survivors_better_than_locality() {
    let (dfs, hot, truth) = scenario();
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);

    let mut probe = LocalityScheduler::new(&dfs);
    let plan = mid_phase_crash(&dfs, &truth, &mut probe, 3);
    let mut base = LocalityScheduler::new(&dfs);
    let without = run_selection_faulty(
        &dfs,
        &truth,
        &mut base,
        &SelectionConfig::default(),
        &FaultConfig::new(plan),
    );

    let mut probe = DataNetScheduler::new(&dfs, &view);
    let plan = mid_phase_crash(&dfs, &truth, &mut probe, 3);
    let mut dn = DataNetScheduler::new(&dfs, &view);
    let with = run_selection_faulty(
        &dfs,
        &truth,
        &mut dn,
        &SelectionConfig::default(),
        &FaultConfig::new(plan),
    );

    let dn_imb = survivor_imbalance(&with);
    let loc_imb = survivor_imbalance(&without);
    assert!(
        dn_imb < loc_imb,
        "post-failure imbalance: datanet {dn_imb} !< locality {loc_imb}"
    );
}

#[test]
fn faulty_pipeline_runs_end_to_end_on_survivors() {
    let (dfs, hot, truth) = scenario();
    let mut probe = LocalityScheduler::new(&dfs);
    let plan = mid_phase_crash(&dfs, &truth, &mut probe, 6);
    let mut sched = LocalityScheduler::new(&dfs);
    let rep = run_pipeline_faulty(
        &dfs,
        hot,
        &mut sched,
        &JobProfile::new("wordcount", 3.0, 0.4, 1.0),
        &SelectionConfig::default(),
        &AnalysisConfig::default(),
        &FaultConfig::new(plan),
    );
    assert!(rep.faults().any());
    assert!(rep.faults().recovery_secs > 0.0);
    assert_eq!(
        rep.job.shuffle_secs.len(),
        NODES as usize - 1,
        "one reducer per survivor"
    );
    assert_eq!(
        rep.selection.per_node_bytes.iter().sum::<u64>(),
        dfs.subdataset_total(hot)
    );
    assert!(rep.total_secs() > 0.0);
}
