//! Streaming-ingest integration: the incremental path must be
//! indistinguishable from a batch build no matter how blocks arrive, and
//! a FORMAT_VERSION-3 store interrupted mid-ingest must resume from its
//! last durable epoch without redoing any work.

use datanet::{ElasticMapArray, IngestConfig, Ingestor, MetaStore, Separation};
use datanet_dfs::{Dfs, DfsConfig, Record, SubDatasetId, Topology};
use datanet_integration::testkit::{write_prefixes, ReplicaDirs};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const ALPHA: f64 = 0.35;

fn sample_dfs(seed: u64) -> Dfs {
    // Skewed sub-dataset mix across ~60 blocks: small ids dominate, the
    // tail exercises the bloom side of the separation.
    let recs = (0..2_400u64).map(|i| {
        let s = if i % 5 == 0 { i % 3 } else { 11 + i % 29 };
        Record::new(SubDatasetId(s), i, 80 + (i % 13) as u32 * 25, i)
    });
    Dfs::write_random(
        DfsConfig {
            block_size: 8_000,
            replication: 2,
            topology: Topology::single_rack(6),
            seed,
        },
        recs,
    )
}

fn cfg(compact_every: usize) -> IngestConfig {
    IngestConfig {
        policy: Separation::Alpha(ALPHA),
        compact_every,
        shard_blocks: 4,
    }
}

/// Property: any two arrival orders — with different compaction cadences —
/// produce query-identical (in fact byte-identical) maps once the stream
/// is fully compacted.
#[test]
fn arrival_order_is_immaterial_after_final_compaction() {
    let dfs = sample_dfs(41);
    assert!(dfs.block_count() >= 20, "need a real stream");
    let batch =
        serde_json::to_string(&ElasticMapArray::build(&dfs, &Separation::Alpha(ALPHA))).unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    for (trial, compact_every) in [(0u64, 1usize), (1, 3), (2, 7), (3, 1000)] {
        let mut order: Vec<usize> = (0..dfs.block_count()).collect();
        order.shuffle(&mut rng);
        let mut ing = Ingestor::new(cfg(compact_every));
        for (k, &i) in order.iter().enumerate() {
            ing.append(&dfs.blocks()[i], k as u64 * 100);
        }
        ing.compact();
        assert_eq!(ing.pending_blocks(), 0, "trial {trial}: stream not drained");
        assert_eq!(
            serde_json::to_string(&ing.snapshot()).unwrap(),
            batch,
            "trial {trial} (compact_every {compact_every}) diverged from the batch build"
        );
        // Spot-check the query surface too, not just the serialized form.
        for s in [0u64, 1, 2, 15, 900] {
            let s = SubDatasetId(s);
            assert_eq!(
                ing.view(s),
                ElasticMapArray::build(&dfs, &Separation::Alpha(ALPHA)).view(s),
                "trial {trial}: view({s}) diverged"
            );
        }
    }
}

/// A FORMAT_VERSION-3 store left mid-ingest reopens at its last durable
/// epoch and resumes without re-summarizing any durable block.
#[test]
fn v3_store_resumes_mid_ingest_without_resummarizing() {
    let dfs = sample_dfs(42);
    let dirs = ReplicaDirs::new("ingest-resume", 2);
    let refs = dirs.paths();
    let cut = dfs.block_count() * 2 / 3;

    let mut first = Ingestor::new(cfg(5));
    for b in &dfs.blocks()[..cut] {
        first.append(b, 0);
    }
    let epoch = first.commit(&refs).unwrap();
    assert_eq!(epoch, 1);
    drop(first); // the "crash": everything not committed is gone

    // The store on disk is a plain format-3 store.
    let mut store = MetaStore::open_replicated(&refs, 2).unwrap();
    assert_eq!(store.manifest().version, 3);
    assert_eq!(store.manifest().epoch, 1);
    assert_eq!(store.manifest().blocks, cut);
    store.view(SubDatasetId(0)).unwrap();

    // Resume adopts every durable block as-is.
    let mut resumed = Ingestor::resume(cfg(5), &refs).unwrap();
    assert_eq!(resumed.stats().resumed_blocks, cut as u64);
    assert_eq!(resumed.stats().summaries_built, 0, "work was redone");
    assert_eq!(resumed.blocks(), cut);
    for b in &dfs.blocks()[cut..] {
        resumed.append(b, 0);
    }
    assert_eq!(resumed.commit(&refs).unwrap(), 2);
    // Only the re-fed tail was summarized this session.
    assert_eq!(
        resumed.stats().summaries_built,
        (dfs.block_count() - cut) as u64
    );
    assert_eq!(
        serde_json::to_string(&resumed.snapshot()).unwrap(),
        serde_json::to_string(&ElasticMapArray::build(&dfs, &Separation::Alpha(ALPHA))).unwrap(),
        "resume lost equivalence with the batch build"
    );
}

/// Crash-prefix sweep, ingest side: a commit interrupted after *every*
/// write prefix of its plan resumes from whatever stayed durable, and
/// re-feeding the swallowed arrivals always converges back to the batch
/// build — the same sweep shape as the pipeline's checkpoint test, via
/// the shared `testkit` helpers.
#[test]
fn commit_crash_at_every_write_prefix_resumes_to_batch_equivalence() {
    let dfs = sample_dfs(44);
    let cut = dfs.block_count() / 2;
    let batch =
        serde_json::to_string(&ElasticMapArray::build(&dfs, &Separation::Alpha(ALPHA))).unwrap();

    // One probe commit to learn the plan width for this stream shape.
    let plan_writes = {
        let mut ing = Ingestor::new(cfg(5));
        for b in &dfs.blocks()[..cut] {
            ing.append(b, 0);
        }
        ing.commit_plan()
            .expect("pending work plans writes")
            .writes()
    };
    assert!(plan_writes >= 2, "sweep needs a multi-write plan");

    for prefix in write_prefixes(plan_writes) {
        let dirs = ReplicaDirs::new("ingest-sweep", 2);
        let refs = dirs.paths();
        let mut ing = Ingestor::new(cfg(5));
        for b in &dfs.blocks()[..cut] {
            ing.append(b, 0);
        }
        let plan = ing.commit_plan().expect("pending work plans writes");
        assert_eq!(plan.writes(), plan_writes, "plan width is deterministic");
        plan.apply_prefix(&refs, prefix).unwrap();
        drop(ing); // the "crash": nothing past the prefix survives

        let mut resumed = Ingestor::resume(cfg(5), &refs).unwrap();
        assert_eq!(
            resumed.stats().summaries_built,
            0,
            "prefix {prefix}: resume redid summary work"
        );
        assert!(
            resumed.blocks() <= cut,
            "prefix {prefix}: resume adopted more blocks than were fed"
        );
        for b in &dfs.blocks()[resumed.blocks()..] {
            resumed.append(b, 0);
        }
        resumed.commit(&refs).unwrap();
        assert_eq!(
            serde_json::to_string(&resumed.snapshot()).unwrap(),
            batch,
            "prefix {prefix}: resumed stream diverged from the batch build"
        );
    }
}

/// Committed epochs stay queryable through the store's time-travel entry
/// point after later epochs land, and answer with the views they froze.
#[test]
fn committed_epochs_time_travel_through_the_store() {
    let dfs = sample_dfs(43);
    let dirs = ReplicaDirs::new("ingest-travel", 2);
    let refs = dirs.paths();
    let target = SubDatasetId(1);
    let mut ing = Ingestor::new(cfg(4));
    let mut frozen = Vec::new();
    for (k, b) in dfs.blocks().iter().enumerate() {
        ing.append(b, k as u64 * 100);
        if (k + 1) % 8 == 0 {
            ing.compact();
            let epoch = ing.commit(&refs).unwrap();
            frozen.push((epoch, ing.blocks(), ing.view(target)));
        }
    }
    ing.commit(&refs).unwrap();
    assert!(frozen.len() >= 3, "need several epochs");
    for (epoch, blocks, want) in &frozen {
        let mut store = MetaStore::open_replicated_at_epoch(&refs, *epoch, 2).unwrap();
        assert_eq!(store.manifest().epoch, *epoch);
        assert_eq!(store.manifest().blocks, *blocks);
        assert_eq!(
            &store.view(target).unwrap(),
            want,
            "epoch {epoch} answers a different view than it froze"
        );
    }
}
