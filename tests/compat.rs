//! Golden back-compat: a `MetaStore` written *before* this release's
//! metadata changes (format version 2: flat Bloom layout, string-keyed
//! exact maps, pre-interning) must still open, scrub, and answer every
//! query identically.
//!
//! The fixture at `tests/fixtures/meta_v2/` holds two frozen replica
//! directories plus `expected_views.json` — every sub-dataset view the
//! writing code answered at fixture-creation time. If this test fails,
//! the reader broke an on-disk compatibility promise.

use datanet::MetaStore;
use datanet_dfs::{BlockId, SubDatasetId};
use serde_json::Value;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/meta_v2")
}

/// Copy the fixture into a scratch directory so tests can corrupt files
/// without touching the committed golden copy.
fn copy_fixture(name: &str) -> PathBuf {
    let dst = std::env::temp_dir().join(format!("datanet-compat-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    for replica in ["r0", "r1"] {
        let to = dst.join(replica);
        std::fs::create_dir_all(&to).expect("mkdir");
        let from = fixture_dir().join(replica);
        for entry in std::fs::read_dir(&from).expect("fixture present") {
            let entry = entry.expect("dirent");
            std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy");
        }
    }
    dst
}

fn val_u64(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        Value::I64(n) if *n >= 0 => *n as u64,
        Value::F64(f) if *f >= 0.0 => *f as u64,
        other => panic!("expected number, got {other:?}"),
    }
}

fn field<'a>(obj: &'a Value, name: &str) -> &'a Value {
    obj.get(name)
        .unwrap_or_else(|| panic!("missing field `{name}`"))
}

/// The recorded views, as `(id, exact pairs, bloom blocks, delta)`.
#[allow(clippy::type_complexity)]
fn expected_views() -> Vec<(u64, Vec<(BlockId, u64)>, Vec<BlockId>, u64)> {
    let raw = std::fs::read(fixture_dir().join("expected_views.json")).expect("golden views");
    let doc = serde_json::parse_value(&raw).expect("golden views parse");
    let Value::Array(items) = &doc else {
        panic!("expected_views.json: not an array");
    };
    items
        .iter()
        .map(|item| {
            let id = val_u64(field(item, "id"));
            let Value::Array(exact) = field(item, "exact") else {
                panic!("exact: not an array");
            };
            let exact = exact
                .iter()
                .map(|pair| {
                    let Value::Array(pair) = pair else {
                        panic!("exact entry: not a pair");
                    };
                    (BlockId(val_u64(&pair[0]) as u32), val_u64(&pair[1]))
                })
                .collect();
            let Value::Array(bloom) = field(item, "bloom") else {
                panic!("bloom: not an array");
            };
            let bloom = bloom.iter().map(|b| BlockId(val_u64(b) as u32)).collect();
            (id, exact, bloom, val_u64(field(item, "delta")))
        })
        .collect()
}

fn assert_views_match(store: &mut MetaStore, context: &str) {
    let golden = expected_views();
    assert!(golden.len() >= 100, "golden corpus suspiciously small");
    for (id, exact, bloom, delta) in &golden {
        let view = store
            .view(SubDatasetId(*id))
            .unwrap_or_else(|e| panic!("{context}: view s{id} failed: {e}"));
        assert_eq!(view.exact(), exact.as_slice(), "{context}: s{id} exact");
        assert_eq!(view.bloom(), bloom.as_slice(), "{context}: s{id} bloom");
        assert_eq!(view.delta(), *delta, "{context}: s{id} delta");
    }
}

#[test]
fn v2_manifest_opens_and_answers_every_golden_query() {
    let dir = copy_fixture("open");
    // The fixture really is the old format — guard against someone
    // regenerating it with current code and silently weakening the test.
    let manifest = std::fs::read(dir.join("r0/manifest.json")).expect("manifest");
    let doc = serde_json::parse_value(&manifest).expect("manifest parse");
    assert_eq!(val_u64(field(&doc, "version")), 2, "fixture must stay v2");

    let replicas = [dir.join("r0"), dir.join("r1")];
    let refs: Vec<&Path> = replicas.iter().map(|p| p.as_path()).collect();
    let mut store = MetaStore::open_replicated(&refs, 2).expect("v2 store must open");
    assert_views_match(&mut store, "fresh open");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v2_store_scrubs_and_heals_then_answers_identically() {
    let dir = copy_fixture("scrub");
    // Rot a shard on the primary; the second replica must heal it.
    std::fs::write(dir.join("r0/shard-0002.json"), b"bit rot").expect("corrupt");

    let replicas = [dir.join("r0"), dir.join("r1")];
    let refs: Vec<&Path> = replicas.iter().map(|p| p.as_path()).collect();
    let mut store = MetaStore::open_replicated(&refs, 2).expect("open with rot");
    let report = store.scrub();
    assert_eq!(report.repaired, 1, "one shard copy repaired");
    assert!(report.quarantined.is_empty(), "nothing quarantined");
    assert_views_match(&mut store, "after scrub");

    // The healed primary now stands alone.
    let mut solo = MetaStore::open_replicated(&[replicas[0].as_path()], 2).expect("healed primary");
    assert_views_match(&mut solo, "healed primary alone");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v2_batched_views_match_the_golden_singles() {
    // The new batched query path must agree with the recorded
    // single-query answers on old-format data too.
    let dir = copy_fixture("batch");
    let replicas = [dir.join("r0"), dir.join("r1")];
    let refs: Vec<&Path> = replicas.iter().map(|p| p.as_path()).collect();
    let mut store = MetaStore::open_replicated(&refs, 2).expect("open");
    let golden = expected_views();
    let ids: Vec<SubDatasetId> = golden.iter().map(|(id, ..)| SubDatasetId(*id)).collect();
    let views = store.views(&ids).expect("batched views");
    assert_eq!(views.len(), golden.len());
    for (view, (id, exact, bloom, delta)) in views.iter().zip(&golden) {
        assert_eq!(view.exact(), exact.as_slice(), "s{id} exact");
        assert_eq!(view.bloom(), bloom.as_slice(), "s{id} bloom");
        assert_eq!(view.delta(), *delta, "s{id} delta");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
