//! Integration tests for the always-on metrics plane (the observability
//! tentpole): snapshot determinism under the rayon-sharded build, the
//! OpenMetrics exposition round-trip, per-query span totals reconciling
//! with the execution report, and the flight recording embedded in a
//! shrunk repro file.

use datanet::{ElasticMapArray, Separation};
use datanet_analytics::profiles::word_count_profile;
use datanet_bench::movie_dataset;
use datanet_check::{check_scenario_instrumented, shrink, CheckOptions, Repro, Scenario};
use datanet_mapreduce::{run_pipeline_traced, AnalysisConfig, DataNetScheduler, SelectionConfig};
use datanet_obs::{parse_openmetrics, to_openmetrics, OmKind, QueryCtx, Recorder};

const NODES: u32 = 8;
const WINDOW_US: u64 = 1_000_000;

/// Canonical series key of a parsed sample: family name plus its labels
/// sorted by key — the exact format `MetricsSnapshot` keys use.
fn canonical_key(family: &str, labels: &[(String, String)]) -> String {
    let mut ls: Vec<&(String, String)> = labels.iter().filter(|(k, _)| k != "quantile").collect();
    ls.sort();
    if ls.is_empty() {
        family.to_string()
    } else {
        let body: Vec<String> = ls.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{family}{{{}}}", body.join(","))
    }
}

/// The metered rayon-sharded build must produce an identical snapshot on
/// every run: wall-domain scan spans are count-only precisely so that
/// worker interleaving cannot leak into the registry.
#[test]
fn metered_snapshot_is_deterministic_under_parallel_build() {
    let (dfs, _) = movie_dataset(NODES);
    let build_snapshot = || {
        let rec = Recorder::off().with_metrics(WINDOW_US);
        ElasticMapArray::build_traced(&dfs, &Separation::Alpha(0.3), &rec);
        to_openmetrics(&rec.metrics_snapshot().expect("metrics attached"))
    };
    let first = build_snapshot();
    assert!(first.contains("spans_total"), "build must meter scan spans");
    for _ in 0..3 {
        assert_eq!(
            build_snapshot(),
            first,
            "metered build snapshot must not depend on worker interleaving"
        );
    }
}

/// A full traced pipeline's snapshot survives the OpenMetrics text
/// exposition round-trip: every counter and histogram series re-parses
/// to its exact key and value, and nothing extra appears.
#[test]
fn openmetrics_roundtrip_preserves_every_series() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let rec = Recorder::off()
        .with_metrics(WINDOW_US)
        .scoped(QueryCtx::new(42).tenant("acme"));
    let mut sched = DataNetScheduler::new(&dfs, &view);
    run_pipeline_traced(
        &dfs,
        hot,
        &mut sched,
        &word_count_profile(),
        &SelectionConfig::default(),
        &AnalysisConfig::default(),
        &rec,
    );
    let snap = rec.metrics_snapshot().expect("metrics attached");
    let families = parse_openmetrics(&to_openmetrics(&snap)).expect("exposition must parse");
    assert!(!families.is_empty());

    let mut counters_seen = 0usize;
    let mut hists_seen = 0usize;
    for family in &families {
        for sample in &family.samples {
            match family.kind {
                OmKind::Counter => {
                    let name = sample
                        .name
                        .strip_suffix("_total")
                        .expect("counter samples end in _total");
                    let key = canonical_key(name, &sample.labels);
                    let &expect = snap
                        .counters
                        .get(&key)
                        .unwrap_or_else(|| panic!("unknown counter series {key}"));
                    assert_eq!(sample.value as u64, expect, "value mismatch for {key}");
                    counters_seen += 1;
                }
                OmKind::Summary => {
                    if let Some(name) = sample.name.strip_suffix("_count") {
                        let key = canonical_key(name, &sample.labels);
                        let h = snap
                            .hists
                            .get(&key)
                            .unwrap_or_else(|| panic!("unknown histogram series {key}"));
                        assert_eq!(sample.value as u64, h.count, "count mismatch for {key}");
                        hists_seen += 1;
                    }
                }
                OmKind::Gauge => {}
            }
        }
    }
    assert_eq!(
        counters_seen,
        snap.counters.len(),
        "every counter round-trips"
    );
    assert_eq!(hists_seen, snap.hists.len(), "every histogram round-trips");
}

/// The causal thread end-to-end: every span series of a query-scoped run
/// carries the query id and tenant, and the per-query span totals agree
/// with the execution report's task accounting.
#[test]
fn per_query_span_totals_reconcile_with_execution_report() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let rec = Recorder::off()
        .with_metrics(WINDOW_US)
        .scoped(QueryCtx::new(7).tenant("acme"));
    let mut sched = DataNetScheduler::new(&dfs, &view);
    let report = run_pipeline_traced(
        &dfs,
        hot,
        &mut sched,
        &word_count_profile(),
        &SelectionConfig::default(),
        &AnalysisConfig::default(),
        &rec,
    );
    let snap = rec.metrics_snapshot().expect("metrics attached");
    let families = parse_openmetrics(&to_openmetrics(&snap)).expect("exposition must parse");

    let spans = families
        .iter()
        .find(|f| f.name == "spans")
        .expect("span counters exported");
    let mut select_tasks = 0u64;
    let mut map_tasks = 0u64;
    let mut reduce_tasks = 0u64;
    for s in &spans.samples {
        // Causality: every span series of this run is attributable.
        assert_eq!(
            s.label("query"),
            Some("7"),
            "span without query id: {}",
            s.name
        );
        assert_eq!(s.label("tenant"), Some("acme"));
        match s.label("name") {
            Some("select") => select_tasks += s.value as u64,
            Some("map") => map_tasks += s.value as u64,
            Some("reduce") => reduce_tasks += s.value as u64,
            _ => {}
        }
    }
    assert_eq!(
        select_tasks as usize, report.selection.total_tasks,
        "metrics plane and execution report must agree on task count"
    );
    assert_eq!(map_tasks as usize, report.job.map_secs.len());
    assert_eq!(reduce_tasks as usize, report.job.reduce_secs.len());
}

/// A planted oracle violation, shrunk to its minimal world, carries the
/// flight recording of that minimal failing run inside the repro file —
/// and the file alone still replays to the same failure.
#[test]
fn shrunk_repro_embeds_flight_recording() {
    let sc = Scenario::from_seed(3);
    let opts = CheckOptions {
        credit_skew: 1,
        ..CheckOptions::default()
    };
    let min = shrink(&sc, &opts).expect("planted credit skew must fail");

    // Instrumented re-run of the *shrunk* scenario, exactly as the CLI
    // does when writing a repro.
    let rec = Recorder::off().with_flight(256);
    let rerun = check_scenario_instrumented(&min.scenario, &opts, &rec);
    assert!(!rerun.passed(), "shrunk scenario must still fail");
    let dump = rec.flight_dump().expect("flight plane attached");
    assert!(
        dump.events
            .iter()
            .any(|e| format!("{:?}", e.kind).contains("OracleViolation")),
        "flight ring must end with the oracle verdict"
    );

    let repro = Repro {
        original_seed: 3,
        scenario: min.scenario.clone(),
        options: opts,
        violations: min.outcome.violations.clone(),
        flight: dump.to_value(),
    };
    let path =
        std::env::temp_dir().join(format!("datanet-metrics-repro-{}.json", std::process::id()));
    repro.save(&path).expect("save repro");
    let back = Repro::load(&path).expect("load repro");
    std::fs::remove_file(&path).ok();

    let embedded = back.flight_dump().expect("flight dump embedded in file");
    assert_eq!(embedded.events.len(), dump.events.len());
    let replayed = back.replay();
    assert!(!replayed.passed(), "repro file must replay to the failure");
    assert_eq!(
        replayed.oracle_names(),
        min.outcome.oracle_names(),
        "replay trips the same oracles"
    );
}
