//! Equivalence guarantees behind the hot-path performance pass: every
//! fast path must be *indistinguishable* from the slow path it replaced.
//!
//! - the sharded ElasticMap build serialises byte-identically to the
//!   serial build over many generated datasets;
//! - `query_batch` / batched views answer bit-identically to N single
//!   queries, driven by the same seed corpus the simulation-check
//!   harness gates on (`tests/corpus/seeds.txt`).

use datanet::{ElasticMapArray, Separation};
use datanet_dfs::{Dfs, DfsConfig, Record, SubDatasetId, Topology};

/// A deterministic dataset whose shape (records, sub-dataset skew, block
/// size, cluster) is derived from `seed` — small enough to build in
/// milliseconds, varied enough to exercise shard boundaries, dominant/tail
/// splits and absent ids.
fn dataset(seed: u64) -> Dfs {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let records = 1500 + (next() % 2500) as usize;
    let spread = 20 + (next() % 120);
    let recs: Vec<Record> = (0..records as u64)
        .map(|i| {
            // Quadratic residues give a skewed, clustered id distribution.
            let s = (i.wrapping_mul(i).wrapping_add(next() % 7)) % spread;
            Record::new(SubDatasetId(s), i, (80 + (next() % 200)) as u32, i)
        })
        .collect();
    let cfg = DfsConfig {
        block_size: 4_000 + (next() % 12_000),
        replication: 2,
        topology: Topology::single_rack(3 + (next() % 6) as u32),
        seed: next(),
    };
    Dfs::write_random(cfg, recs)
}

fn corpus_seeds() -> Vec<u64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus/seeds.txt");
    std::fs::read_to_string(path)
        .expect("sim-check corpus present")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().expect("corpus seed"))
        .collect()
}

#[test]
fn sharded_build_is_byte_identical_to_serial_across_20_seeds() {
    for seed in 0..20u64 {
        let dfs = dataset(seed);
        let policy = Separation::Alpha(0.3);
        let sharded = ElasticMapArray::build(&dfs, &policy);
        let serial = ElasticMapArray::build_sequential(&dfs, &policy);
        let a = serde_json::to_string(&sharded).expect("serialise");
        let b = serde_json::to_string(&serial).expect("serialise");
        assert_eq!(a, b, "seed {seed}: sharded and serial builds diverge");
    }
}

#[test]
fn batched_views_match_single_views_across_the_simcheck_corpus() {
    let seeds = corpus_seeds();
    assert!(seeds.len() >= 50, "corpus unexpectedly small");
    for &seed in &seeds {
        let dfs = dataset(seed);
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        // Present ids (dense low range), absent ids, duplicates, and an
        // unsorted order: everything the batched merge-join must handle.
        let mut ids: Vec<SubDatasetId> = (0..24).map(SubDatasetId).collect();
        ids.push(SubDatasetId(u64::MAX - seed));
        ids.push(SubDatasetId(3));
        ids.reverse();
        let batched = arr.views(&ids);
        assert_eq!(batched.len(), ids.len());
        for (s, view) in ids.iter().zip(&batched) {
            let single = arr.view(*s);
            let a = serde_json::to_string(view).expect("serialise");
            let b = serde_json::to_string(&single).expect("serialise");
            assert_eq!(a, b, "seed {seed}: batched view for {s} diverges");
        }
    }
}

#[test]
fn per_block_query_batch_matches_single_queries_across_the_corpus() {
    // One level below views: the raw membership/size primitive.
    for &seed in corpus_seeds().iter().take(20) {
        let dfs = dataset(seed);
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let mut ids: Vec<SubDatasetId> = (0..40).map(|i| SubDatasetId(i * 3 % 50)).collect();
        ids.push(SubDatasetId(u64::MAX));
        for b in 0..arr.len() {
            let b = datanet_dfs::BlockId(b as u32);
            let batch = arr.query_batch(b, &ids);
            for (s, got) in ids.iter().zip(&batch) {
                assert_eq!(
                    *got,
                    arr.query(b, *s),
                    "seed {seed}: block {b} id {s} diverges"
                );
            }
        }
    }
}
