//! Validation of the Section II-B probability model against the simulator:
//! when per-block sub-dataset sizes really are `Γ(k, θ)` and blocks are
//! placed and scheduled content-obliviously, the per-node workloads should
//! follow `Γ(nk/m, θ)` — the model and the machine must agree.

use datanet_cluster::SimTime;
use datanet_dfs::{Dfs, DfsConfig, Record, SubDatasetId, Topology};
use datanet_mapreduce::{run_selection, LocalityScheduler, SelectionConfig};
use datanet_stats::{GammaDist, ImbalanceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BLOCKS: usize = 512;
const NODES: u32 = 32;
const UNIT: f64 = 1024.0; // bytes per model unit

/// A DFS whose blocks each hold exactly one record of Γ(1.2, 7)·1 kB bytes
/// — the paper's model made literal.
fn gamma_dfs(seed: u64) -> Dfs {
    let g = GammaDist::new(1.2, 7.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let records: Vec<Record> = (0..BLOCKS as u64)
        .map(|i| {
            let bytes = (g.sample(&mut rng) * UNIT).max(1.0) as u32;
            Record::new(SubDatasetId(0), i, bytes, i)
        })
        .collect();
    Dfs::write_dataset(
        DfsConfig {
            block_size: 1, // every record seals its own block
            replication: 3,
            topology: Topology::single_rack(NODES),
            seed,
        },
        records,
        &datanet_dfs::RandomPlacement,
    )
}

/// Node workloads from one content-oblivious selection run.
fn node_workloads(seed: u64) -> Vec<f64> {
    let dfs = gamma_dfs(seed);
    assert_eq!(dfs.block_count(), BLOCKS);
    let truth = dfs.subdataset_distribution(SubDatasetId(0));
    let mut sched = LocalityScheduler::new(&dfs);
    // Constant per-task cost isolates the random-partition assumption the
    // model makes (no workload-dependent pull-rate feedback).
    let cfg = SelectionConfig {
        scan_factor: 1.0,
        filtered_cost_factor: 0.0001,
        task_overhead: SimTime::from_millis(5),
        ..Default::default()
    };
    let out = run_selection(&dfs, &truth, &mut sched, &cfg);
    out.per_node_bytes
        .iter()
        .map(|&b| b as f64 / UNIT)
        .collect()
}

#[test]
fn simulated_node_workloads_match_gamma_model() {
    let model = ImbalanceModel::new(1.2, 7.0, BLOCKS);
    let expected_mean = model.expected_workload(NODES as usize);

    // Pool node workloads across placements for a decent sample.
    let mut samples = Vec::new();
    for seed in 0..25u64 {
        samples.extend(node_workloads(seed));
    }
    let n = samples.len() as f64;

    // Mean within 3% of nkθ/m.
    let mean = samples.iter().sum::<f64>() / n;
    assert!(
        (mean - expected_mean).abs() / expected_mean < 0.03,
        "mean {mean} vs model {expected_mean}"
    );

    // Tail probabilities within ±0.05 of the analytic Γ(nk/m, θ) values.
    for frac in [0.5, 0.75, 1.25, 1.5, 2.0] {
        let threshold = frac * expected_mean;
        let empirical = samples.iter().filter(|&&w| w < threshold).count() as f64 / n;
        let analytic = model.p_below(NODES as usize, frac);
        assert!(
            (empirical - analytic).abs() < 0.05,
            "P(Z < {frac}·E): empirical {empirical} vs model {analytic}"
        );
    }
}

#[test]
fn imbalance_grows_with_cluster_size_in_simulation_too() {
    // Figure 2's qualitative claim checked on the machine: the same data on
    // a bigger cluster shows a larger max/avg imbalance.
    let spread = |nodes: u32| {
        let g = GammaDist::new(1.2, 7.0);
        let mut rng = StdRng::seed_from_u64(7);
        let records: Vec<Record> = (0..BLOCKS as u64)
            .map(|i| {
                let bytes = (g.sample(&mut rng) * UNIT).max(1.0) as u32;
                Record::new(SubDatasetId(0), i, bytes, i)
            })
            .collect();
        let dfs = Dfs::write_dataset(
            DfsConfig {
                block_size: 1,
                replication: 3,
                topology: Topology::single_rack(nodes),
                seed: 7,
            },
            records,
            &datanet_dfs::RandomPlacement,
        );
        let truth = dfs.subdataset_distribution(SubDatasetId(0));
        let mut sched = LocalityScheduler::new(&dfs);
        run_selection(&dfs, &truth, &mut sched, &SelectionConfig::default()).imbalance()
    };
    let small = spread(8);
    let large = spread(128);
    assert!(
        large > small,
        "m=128 imbalance {large} should exceed m=8 imbalance {small}"
    );
}
