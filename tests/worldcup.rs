//! Third workload regime: World-Cup-style web access logs, where *all*
//! sub-datasets co-cluster on match days. The interesting contrast: block
//! composition is bursty in volume but the per-object *mix* within a burst
//! is stable, so a popular object is spread across every busy region —
//! between the movie regime (per-sub-dataset clustering) and GitHub
//! (stationary mix).

use datanet::{ElasticMapArray, Separation};
use datanet_dfs::{Dfs, DfsConfig, SubDatasetId, Topology};
use datanet_mapreduce::{run_selection, DataNetScheduler, LocalityScheduler, SelectionConfig};
use datanet_workloads::WorldCupConfig;

fn worldcup_dfs() -> Dfs {
    let records = WorldCupConfig {
        records: 120_000,
        ..Default::default()
    }
    .generate();
    Dfs::write_random(
        DfsConfig {
            block_size: 128 * 1024,
            replication: 3,
            topology: Topology::single_rack(16),
            seed: 0x5763,
        },
        records,
    )
}

/// The most requested object.
fn hot_object(dfs: &Dfs) -> SubDatasetId {
    let mut totals = std::collections::HashMap::new();
    for b in dfs.blocks() {
        for (s, bytes) in b.subdataset_sizes() {
            *totals.entry(s).or_insert(0u64) += bytes;
        }
    }
    totals
        .into_iter()
        .max_by_key(|&(s, b)| (b, std::cmp::Reverse(s)))
        .map(|(s, _)| s)
        .expect("non-empty dataset")
}

#[test]
fn size_chunked_blocks_neutralise_time_bursts() {
    // An instructive negative result: match days compress many requests
    // into a short *time* window, but blocks are sealed by *size*, so the
    // per-block object mix stays stationary — the hot object spreads nearly
    // proportionally over blocks. Volume burstiness alone does not create
    // the paper's content clustering; a skewed per-block *mix* does.
    let dfs = worldcup_dfs();
    let hot = hot_object(&dfs);
    let dist = dfs.subdataset_distribution(hot);
    let total: u64 = dist.iter().sum();
    assert!(total > 0);
    let mut sorted = dist.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top_quarter: u64 = sorted.iter().take(dist.len() / 4).sum();
    let share = top_quarter as f64 / total as f64;
    assert!(
        (0.25..0.45).contains(&share),
        "expected a near-proportional spread, top quarter holds {share:.2}"
    );
}

#[test]
fn datanet_balances_the_access_log_too() {
    let dfs = worldcup_dfs();
    let hot = hot_object(&dfs);
    let truth = dfs.subdataset_distribution(hot);
    let sel = SelectionConfig::default();

    let mut base = LocalityScheduler::new(&dfs);
    let without = run_selection(&dfs, &truth, &mut base, &sel);
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let mut dn = DataNetScheduler::new(&dfs, &view);
    let with = run_selection(&dfs, &truth, &mut dn, &sel);

    // In this regime the hot object is spread near-proportionally (see the
    // negative-result test above), so locality scheduling is already close
    // to balanced and DataNet has no skew to exploit. The claim worth
    // testing is that DataNet *also* balances — it must stay within a hair
    // of the locality baseline and well clear of actual imbalance, not
    // strictly beat a baseline that is already near-optimal.
    assert!(
        with.imbalance() < 1.2,
        "datanet failed to balance: {}",
        with.imbalance()
    );
    assert!(
        with.imbalance() < without.imbalance() * 1.05,
        "datanet {} not within 5% of locality {}",
        with.imbalance(),
        without.imbalance()
    );
    assert_eq!(
        with.per_node_bytes.iter().sum::<u64>(),
        without.per_node_bytes.iter().sum::<u64>()
    );
}

#[test]
fn elasticmap_estimates_the_hot_object_well() {
    let dfs = worldcup_dfs();
    let hot = hot_object(&dfs);
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let acc = arr.view(hot).accuracy(&dfs).expect("object exists");
    assert!(acc > 0.85, "hot-object estimate accuracy {acc}");
}
