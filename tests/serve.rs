//! Integration properties for the multi-tenant serving plane
//! (`datanet-serve`).
//!
//! Two properties anchor this file:
//!
//! 1. **Concurrent ≡ sequential** — the canonical answers section of a
//!    serve report is byte-identical across any worker count and any
//!    schedule seed, for ≥ 20 stream seeds × all three tenant mixes. The
//!    decision plane never consults the execution plane, so concurrency
//!    can move *when* work runs but never what it produces.
//! 2. **Cache-invalidation crash sweep** — an ingest commit or a node
//!    loss injected at *every* stream position (the same prefix
//!    enumeration the durable-store sweeps use, via
//!    [`testkit::write_prefixes`]) never yields a stale cached plan:
//!    every completed query's served digest equals a fresh plan's digest
//!    at the epoch the outcome claims.

use datanet::Separation;
use datanet_dfs::{Dfs, DfsConfig, Record, SubDatasetId, Topology};
use datanet_integration::testkit;
use datanet_obs::Recorder;
use datanet_serve::{
    generate_stream, plan_digest, serve, Disposition, QuerySpec, ScriptedEvent, ServeConfig,
    ServeEvent, StreamConfig, TenantMix, World,
};

const SUBDATASETS: u64 = 5;

fn build_world(seed: u64) -> World {
    let records: Vec<Record> = (0..150)
        .map(|i| Record::new(SubDatasetId(i % SUBDATASETS), i, 260, seed ^ i))
        .collect();
    let dfs = Dfs::write_random(
        DfsConfig {
            block_size: 2_000,
            replication: 2,
            topology: Topology::single_rack(4),
            seed,
        },
        records,
    );
    World::new(dfs, SUBDATASETS, Separation::Alpha(0.4), seed)
}

fn build_stream(mix: TenantMix, seed: u64, queries: u32) -> Vec<QuerySpec> {
    generate_stream(&StreamConfig {
        tenants: 3,
        queries,
        gap_us: 400,
        subdatasets: SUBDATASETS,
        mix,
        seed,
    })
}

/// Property 1: any seeded worker interleaving produces the sequential
/// run's answers, byte for byte, across ≥ 20 seeds × all tenant mixes.
#[test]
fn concurrent_answers_equal_sequential_over_seeds_and_mixes() {
    for seed in 0..20u64 {
        for mix in TenantMix::ALL {
            let stream = build_stream(mix, seed, 30);
            let sequential = serve(
                build_world(seed),
                &stream,
                &[],
                &ServeConfig {
                    workers: 1,
                    schedule_seed: 0,
                    ..ServeConfig::default()
                },
                &Recorder::off(),
            );
            for (workers, schedule_seed) in [(3, seed ^ 0xABCD), (8, seed.rotate_left(17))] {
                let concurrent = serve(
                    build_world(seed),
                    &stream,
                    &[],
                    &ServeConfig {
                        workers,
                        schedule_seed,
                        ..ServeConfig::default()
                    },
                    &Recorder::off(),
                );
                assert_eq!(
                    concurrent.answers.canonical_json(),
                    sequential.answers.canonical_json(),
                    "seed {seed} mix {} workers {workers}: concurrent answers \
                     diverged from sequential",
                    mix.as_str()
                );
            }
        }
    }
}

/// Property 2: the epoch-keyed cache never serves a stale plan, wherever
/// a world mutation lands in the stream. For each event kind, inject it
/// before every stream position (and after the last arrival), then check
/// every completed outcome's digest against a fresh plan computed on a
/// replayed world at the claimed epoch.
#[test]
fn cache_invalidation_sweep_never_serves_a_stale_plan() {
    let queries = 12u32;
    let seed = 23u64;
    let stream = build_stream(TenantMix::Uniform, seed, queries);
    let cfg = ServeConfig::default();
    let kinds = [
        ServeEvent::IngestCommit { blocks: 2 },
        ServeEvent::NodeLoss { node: 1 },
    ];
    for event in kinds {
        let mut saw_pre_epoch = false;
        let mut saw_post_epoch = false;
        // Same crash-point enumeration as the durable-store sweeps:
        // nothing before the event, each proper prefix, everything.
        for at in testkit::write_prefixes(queries as usize) {
            let events = [ScriptedEvent {
                at_query: at as u32,
                event,
            }];
            let report = serve(build_world(seed), &stream, &events, &cfg, &Recorder::off());

            // Replay the event prefix to rebuild each reachable world.
            let mut worlds = vec![build_world(seed)];
            let mut post = build_world(seed);
            post.apply(&event);
            worlds.push(post);

            for o in &report.answers.outcomes {
                let Disposition::Completed {
                    sub,
                    epoch,
                    plan_digest: served,
                    ..
                } = o.disposition
                else {
                    continue;
                };
                let w = worlds
                    .iter()
                    .find(|w| w.epoch_key() == epoch)
                    .unwrap_or_else(|| {
                        panic!("event at {at}: query {} claims unreachable epoch", o.id)
                    });
                let fresh = plan_digest(&w.plan_batch(&[SubDatasetId(sub)], cfg.maxflow)[0]);
                assert_eq!(
                    served, fresh,
                    "event at {at}: query {} (sub-dataset {sub}) was served a \
                     stale cached plan",
                    o.id
                );
                if epoch == worlds[0].epoch_key() {
                    saw_pre_epoch = true;
                } else {
                    saw_post_epoch = true;
                }
            }
            assert!(
                report
                    .answers
                    .outcomes
                    .iter()
                    .any(|o| matches!(o.disposition, Disposition::Completed { .. })),
                "event at {at}: the sweep must complete queries to be meaningful"
            );
        }
        // The sweep crossed the mutation in both directions: some
        // completions before it, some after — otherwise the property
        // above is vacuous.
        assert!(
            saw_pre_epoch && saw_post_epoch,
            "sweep never observed both epochs for {event:?}"
        );
    }
}

/// The cache is not a bystander in these sweeps: with the mutation
/// mid-stream, repeated sub-dataset requests must hit on both sides of
/// the epoch boundary.
#[test]
fn sweep_runs_actually_exercise_the_cache() {
    let stream = build_stream(TenantMix::Adversarial, 31, 16);
    let events = [ScriptedEvent {
        at_query: 8,
        event: ServeEvent::IngestCommit { blocks: 2 },
    }];
    let report = serve(
        build_world(31),
        &stream,
        &events,
        &ServeConfig::default(),
        &Recorder::off(),
    );
    assert!(
        report.answers.cache_hits > 0,
        "an adversarial mix hammering one sub-dataset must produce cache hits"
    );
    assert!(
        report.answers.cache_misses >= 2,
        "the epoch bump must force at least one fresh plan per side"
    );
}
