//! Property tests for the cache-line-blocked Bloom filter: the blocked
//! layout trades one cache miss per probe for a slightly less uniform bit
//! spread, and these tests pin down how much accuracy that may cost —
//! the measured false-positive rate must stay within 2× of the design
//! rate across sizes and seeds, and membership must be completely
//! insensitive to insert order.

use datanet::BloomFilter;
use datanet_dfs::SubDatasetId;

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x >> 12;
    *x ^= *x << 25;
    *x ^= *x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Distinct member ids derived from `seed`, disjoint by construction from
/// the probe range used below.
fn members(n: usize, seed: u64) -> Vec<SubDatasetId> {
    // Even ids are members, odd ids are probes: never a false "false
    // positive" caused by accidentally probing a member.
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut out = std::collections::BTreeSet::new();
    while out.len() < n {
        out.insert(xorshift(&mut x) & !1);
    }
    out.into_iter().map(SubDatasetId).collect()
}

#[test]
fn measured_fpr_stays_within_2x_of_design_rate() {
    // (expected items, design rate, seed) across two orders of magnitude.
    let cases = [
        (64usize, 0.01f64, 1u64),
        (256, 0.01, 2),
        (512, 0.02, 3),
        (1024, 0.01, 4),
        (4096, 0.05, 5),
        (16384, 0.01, 6),
    ];
    for (n, rate, seed) in cases {
        let mut bloom = BloomFilter::with_rate(n, rate);
        for &id in &members(n, seed) {
            bloom.insert(id);
        }
        let probes = 200_000u64;
        let mut x = seed.wrapping_mul(0xD1B5_4A32_D192_ED03) | 1;
        let mut false_positives = 0u64;
        for _ in 0..probes {
            let probe = xorshift(&mut x) | 1; // odd: never a member
            if bloom.contains(SubDatasetId(probe)) {
                false_positives += 1;
            }
        }
        let measured = false_positives as f64 / probes as f64;
        assert!(
            measured <= 2.0 * rate,
            "n={n} rate={rate}: measured FPR {measured:.4} above 2x design rate"
        );
    }
}

#[test]
fn members_are_never_reported_absent() {
    for (n, rate, seed) in [(256usize, 0.01f64, 10u64), (4096, 0.02, 11)] {
        let ids = members(n, seed);
        let mut bloom = BloomFilter::with_rate(n, rate);
        for &id in &ids {
            bloom.insert(id);
        }
        for &id in &ids {
            assert!(bloom.contains(id), "member {id} reported absent");
        }
    }
}

#[test]
fn membership_is_stable_across_rebuilds_in_any_insert_order() {
    for (n, rate, seed) in [(512usize, 0.01f64, 20u64), (2048, 0.02, 21)] {
        let ids = members(n, seed);
        let mut forward = BloomFilter::with_rate(n, rate);
        for &id in &ids {
            forward.insert(id);
        }
        // Reverse order, and a deterministic shuffle.
        let mut backward = BloomFilter::with_rate(n, rate);
        for &id in ids.iter().rev() {
            backward.insert(id);
        }
        let mut shuffled = ids.clone();
        let mut x = seed | 1;
        for i in (1..shuffled.len()).rev() {
            let j = (xorshift(&mut x) % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let mut scrambled = BloomFilter::with_rate(n, rate);
        for &id in &shuffled {
            scrambled.insert(id);
        }
        // Idempotent OR writes: the filters are *equal*, not merely
        // answer-equivalent, so every future probe agrees too.
        assert_eq!(forward, backward, "n={n}: insert order changed the bits");
        assert_eq!(forward, scrambled, "n={n}: shuffle changed the bits");
    }
}
