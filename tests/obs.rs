//! Observability-plane acceptance tests (ISSUE: simulation-clock tracing
//! and metrics): a seeded faulty run must produce a Chrome-loadable trace
//! with one span per executed task and a complete
//! crash → suspicion → re-plan chain per injected crash, the
//! straggler/idler classification must agree with the recorded busy times,
//! and a recorder-off run must serialize byte-identically to a traced one.

use datanet::{ElasticMapArray, Separation};
use datanet_bench::movie_dataset;
use datanet_cluster::{DetectorConfig, FaultPlan, SimTime};
use datanet_dfs::SubDatasetId;
use datanet_mapreduce::{
    run_pipeline, run_pipeline_traced, run_selection, run_selection_faulty_traced, AnalysisConfig,
    DataNetScheduler, FaultConfig, MapScheduler, SelectionConfig,
};
use datanet_obs::{NodeClass, Recorder};

const NODES: u32 = 8;

fn scenario() -> (datanet_dfs::Dfs, SubDatasetId, Vec<u64>) {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    (dfs, hot, truth)
}

/// A crash of `node` halfway through the healthy phase of `probe`.
fn mid_phase_crash(
    dfs: &datanet_dfs::Dfs,
    truth: &[u64],
    probe: &mut dyn MapScheduler,
    node: usize,
) -> FaultPlan {
    let healthy = run_selection(dfs, truth, probe, &SelectionConfig::default());
    let crash_at = SimTime::from_micros(healthy.end.as_micros() / 2);
    assert!(crash_at > SimTime::ZERO, "phase must have real duration");
    FaultPlan::none(NODES as usize).crash(node, crash_at)
}

#[test]
fn traced_faulty_run_covers_every_task_and_crash() {
    let (dfs, hot, truth) = scenario();
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let mut probe = DataNetScheduler::new(&dfs, &view);
    let plan = mid_phase_crash(&dfs, &truth, &mut probe, 3);

    let rec = Recorder::new();
    let mut sched = DataNetScheduler::new(&dfs, &view);
    let out = run_selection_faulty_traced(
        &dfs,
        &truth,
        &mut sched,
        &SelectionConfig::default(),
        &FaultConfig::new(plan),
        &rec,
    );
    assert_eq!(out.faults.crashed_nodes, vec![3]);
    let data = rec.take();

    // Lost in-flight spans are closed at the crash instant; nothing leaks.
    assert_eq!(data.unclosed_spans(), 0, "every span must be closed");

    // One `select` span per task grant: every completed task (originals and
    // re-executions alike — `total_tasks` credits at completion) plus every
    // in-flight grant the crash killed, which closes with a "lost" note.
    let selects: Vec<_> = data.spans.iter().filter(|s| s.name == "select").collect();
    let lost = selects
        .iter()
        .filter(|s| s.ctx.note.as_deref() == Some("lost"))
        .count();
    assert!(selects.len() >= out.total_tasks, "a span per executed task");
    assert_eq!(selects.len(), out.total_tasks + lost);
    assert!(lost <= out.faults.requeued_tasks);
    assert_eq!(data.counters["tasks_executed"], out.total_tasks as u64);
    assert_eq!(data.counters["crashes"], 1);

    // A complete oracle chain per injected crash: suspicion is instant,
    // the re-plan lands at or after it.
    let chains = data.crash_chains();
    assert_eq!(chains.len(), out.faults.crashed_nodes.len());
    for chain in &chains {
        assert!(out.faults.crashed_nodes.contains(&(chain.node as usize)));
        assert_eq!(chain.suspected_us, Some(chain.crash_us), "oracle model");
        let replanned = chain.replanned_us.expect("scheduler recorded a re-plan");
        assert!(replanned >= chain.crash_us);
    }

    // The trace exports to Chrome JSON with the phase span present.
    let chrome = data.to_chrome_json();
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("selection"));
}

#[test]
fn detector_chain_latencies_match_fault_stats() {
    let (dfs, hot, truth) = scenario();
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let mut probe = DataNetScheduler::new(&dfs, &view);
    let plan = mid_phase_crash(&dfs, &truth, &mut probe, 5);

    let rec = Recorder::new();
    let mut sched = DataNetScheduler::new(&dfs, &view);
    let out = run_selection_faulty_traced(
        &dfs,
        &truth,
        &mut sched,
        &SelectionConfig::default(),
        &FaultConfig::with_detection(plan, DetectorConfig::default()),
        &rec,
    );
    assert_eq!(out.faults.crashed_nodes, vec![5]);
    let data = rec.take();
    assert_eq!(data.unclosed_spans(), 0);

    // The trace's crash → suspicion latency is the same number FaultStats
    // reports, crash by crash.
    let chains = data.crash_chains();
    assert_eq!(chains.len(), out.faults.detection_latency_secs.len());
    for (chain, &stat_secs) in chains.iter().zip(&out.faults.detection_latency_secs) {
        let trace_secs = chain.detection_secs().expect("detector suspected the node");
        assert!(
            (trace_secs - stat_secs).abs() < 1e-9,
            "trace says {trace_secs}s, FaultStats says {stat_secs}s"
        );
        assert!(trace_secs > 0.0, "EWMA detection is not instantaneous");
    }
}

#[test]
fn straggler_idler_classification_is_consistent_with_busy_times() {
    let (dfs, hot, truth) = scenario();
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
    let mut probe = DataNetScheduler::new(&dfs, &view);
    let plan = mid_phase_crash(&dfs, &truth, &mut probe, 3);

    let rec = Recorder::new();
    let mut sched = DataNetScheduler::new(&dfs, &view);
    let out = run_selection_faulty_traced(
        &dfs,
        &truth,
        &mut sched,
        &SelectionConfig::default(),
        &FaultConfig::new(plan),
        &rec,
    );
    let summary = rec.take().summary(None);

    assert!(!summary.node_util.is_empty());
    for util in &summary.node_util {
        // Re-derive each node's class from its recorded busy time.
        let b = util.busy_us as f64;
        let expected = summary.expected_busy_us;
        let class = if b > 2.0 * expected {
            NodeClass::Straggler
        } else if b < expected / 2.0 {
            NodeClass::Idler
        } else {
            NodeClass::Normal
        };
        assert_eq!(util.class, class, "node {}", util.node);
        assert!((0.0..=1.0 + 1e-9).contains(&util.utilisation));
        assert_eq!(
            summary.stragglers.contains(&util.node),
            class == NodeClass::Straggler
        );
        assert_eq!(
            summary.idlers.contains(&util.node),
            class == NodeClass::Idler
        );
    }
    // The crashed node lost half its phase: it cannot out-work the field.
    let crashed = summary.node_util.iter().find(|u| u.node == 3).unwrap();
    assert_ne!(
        crashed.class,
        NodeClass::Straggler,
        "a node dead for half the phase is no straggler"
    );
    assert!(summary.sim_end_us >= out.end.as_micros());
}

#[test]
fn recorder_off_report_is_byte_identical_to_a_traced_run() {
    let (dfs, hot, _) = scenario();
    let job = datanet_analytics::profiles::word_count_profile();
    let sel = SelectionConfig::default();
    let ana = AnalysisConfig::default();
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);

    let mut plain_sched = DataNetScheduler::new(&dfs, &view);
    let plain = run_pipeline(&dfs, hot, &mut plain_sched, &job, &sel, &ana);

    let rec = Recorder::new();
    let mut traced_sched = DataNetScheduler::new(&dfs, &view);
    let traced = run_pipeline_traced(&dfs, hot, &mut traced_sched, &job, &sel, &ana, &rec);
    assert!(!rec.take().spans.is_empty(), "the recorder really was on");

    // Tracing never perturbs the simulation, and an untraced report
    // serializes without any obs key at all.
    assert_eq!(plain, traced);
    let plain_json = serde_json::to_string(&plain).unwrap();
    let traced_json = serde_json::to_string(&traced).unwrap();
    assert_eq!(plain_json, traced_json, "byte-identical report output");
    assert!(!plain_json.contains("\"obs\""));
}
