//! Reproducibility: the whole stack — generators, DFS placement, scan,
//! scheduling, simulation — is exactly deterministic under fixed seeds.

use datanet::{ElasticMapArray, Separation};
use datanet_analytics::profiles::word_count_profile;
use datanet_bench::{github_dataset, movie_dataset, NODES};
use datanet_mapreduce::{
    run_pipeline, AnalysisConfig, DataNetScheduler, LocalityScheduler, SelectionConfig,
};

#[test]
fn movie_pipeline_is_bitwise_reproducible() {
    let run = || {
        let (dfs, catalog) = movie_dataset(NODES);
        let hot = catalog.most_reviewed();
        let mut sched = LocalityScheduler::new(&dfs);
        run_pipeline(
            &dfs,
            hot,
            &mut sched,
            &word_count_profile(),
            &SelectionConfig::default(),
            &AnalysisConfig::default(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn datanet_pipeline_is_bitwise_reproducible() {
    let run = || {
        let (dfs, catalog) = movie_dataset(NODES);
        let hot = catalog.most_reviewed();
        let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
        let mut sched = DataNetScheduler::new(&dfs, &view);
        run_pipeline(
            &dfs,
            hot,
            &mut sched,
            &word_count_profile(),
            &SelectionConfig::default(),
            &AnalysisConfig::default(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn parallel_scan_is_deterministic() {
    // Rayon parallelism must not leak into results: parallel and sequential
    // builds answer every query identically and occupy the same memory.
    // (HashMap iteration order is instance-specific, so we compare
    // semantics, not serialised bytes.)
    let (dfs, catalog) = movie_dataset(NODES);
    let par = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let seq = ElasticMapArray::build_sequential(&dfs, &Separation::Alpha(0.3));
    assert_eq!(par.len(), seq.len());
    assert_eq!(par.memory_bytes(), seq.memory_bytes());
    for (movie, _) in catalog.by_size_desc().into_iter().take(200) {
        for b in dfs.blocks() {
            assert_eq!(par.query(b.id(), movie), seq.query(b.id(), movie));
        }
        assert_eq!(par.view(movie), seq.view(movie));
    }
}

#[test]
fn github_dataset_is_reproducible() {
    let a = github_dataset(NODES);
    let b = github_dataset(NODES);
    assert_eq!(a.namenode(), b.namenode());
    assert_eq!(a.total_bytes(), b.total_bytes());
    for (ba, bb) in a.blocks().iter().zip(b.blocks()) {
        assert_eq!(ba, bb);
    }
}
