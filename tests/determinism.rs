//! Reproducibility: the whole stack — generators, DFS placement, scan,
//! scheduling, simulation — is exactly deterministic under fixed seeds.

use datanet::{ElasticMapArray, MetaStore, Separation};
use datanet_analytics::profiles::word_count_profile;
use datanet_bench::{github_dataset, movie_dataset, NODES};
use datanet_cluster::{FaultPlan, SimTime};
use datanet_mapreduce::{
    run_pipeline, run_pipeline_faulty, run_pipeline_faulty_traced, run_pipeline_traced,
    run_selection, run_selection_faulty, run_selection_faulty_traced, run_selection_resilient,
    run_selection_resilient_traced, run_selection_traced, AnalysisConfig, DataNetScheduler,
    FaultConfig, LocalityScheduler, SelectionConfig,
};
use datanet_obs::Recorder;

#[test]
fn movie_pipeline_is_bitwise_reproducible() {
    let run = || {
        let (dfs, catalog) = movie_dataset(NODES);
        let hot = catalog.most_reviewed();
        let mut sched = LocalityScheduler::new(&dfs);
        run_pipeline(
            &dfs,
            hot,
            &mut sched,
            &word_count_profile(),
            &SelectionConfig::default(),
            &AnalysisConfig::default(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn datanet_pipeline_is_bitwise_reproducible() {
    let run = || {
        let (dfs, catalog) = movie_dataset(NODES);
        let hot = catalog.most_reviewed();
        let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(hot);
        let mut sched = DataNetScheduler::new(&dfs, &view);
        run_pipeline(
            &dfs,
            hot,
            &mut sched,
            &word_count_profile(),
            &SelectionConfig::default(),
            &AnalysisConfig::default(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn parallel_scan_is_deterministic() {
    // Rayon parallelism must not leak into results: parallel and sequential
    // builds answer every query identically and occupy the same memory.
    // (HashMap iteration order is instance-specific, so we compare
    // semantics, not serialised bytes.)
    let (dfs, catalog) = movie_dataset(NODES);
    let par = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let seq = ElasticMapArray::build_sequential(&dfs, &Separation::Alpha(0.3));
    assert_eq!(par.len(), seq.len());
    assert_eq!(par.memory_bytes(), seq.memory_bytes());
    for (movie, _) in catalog.by_size_desc().into_iter().take(200) {
        for b in dfs.blocks() {
            assert_eq!(par.query(b.id(), movie), seq.query(b.id(), movie));
        }
        assert_eq!(par.view(movie), seq.view(movie));
    }
}

// ---------------------------------------------------------------------------
// Traced twins: every `*_traced` entry point must be observation-transparent.
// The recorder may watch, but never steer — results are bit-identical whether
// tracing is disabled (`Recorder::off()`), active, or the untraced function
// is called instead; and an active recorder closes every span it opens.

#[test]
fn traced_selection_twin_matches_untraced() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let run_untraced = || {
        let mut sched = LocalityScheduler::new(&dfs);
        run_selection(&dfs, &truth, &mut sched, &SelectionConfig::default())
    };
    let run_traced = |rec: &Recorder| {
        let mut sched = LocalityScheduler::new(&dfs);
        run_selection_traced(&dfs, &truth, &mut sched, &SelectionConfig::default(), rec)
    };
    let plain = run_untraced();
    assert_eq!(plain, run_traced(&Recorder::off()));
    let rec = Recorder::new();
    assert_eq!(plain, run_traced(&rec));
    let trace = rec.take();
    assert_eq!(trace.unclosed_spans(), 0);
    assert!(trace.sim_end_us() > 0, "an active recorder saw the run");
}

#[test]
fn traced_pipeline_twin_matches_untraced() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let view = arr.view(hot);
    let run_untraced = || {
        let mut sched = DataNetScheduler::new(&dfs, &view);
        run_pipeline(
            &dfs,
            hot,
            &mut sched,
            &word_count_profile(),
            &SelectionConfig::default(),
            &AnalysisConfig::default(),
        )
    };
    let run_traced = |rec: &Recorder| {
        let mut sched = DataNetScheduler::new(&dfs, &view);
        run_pipeline_traced(
            &dfs,
            hot,
            &mut sched,
            &word_count_profile(),
            &SelectionConfig::default(),
            &AnalysisConfig::default(),
            rec,
        )
    };
    let plain = run_untraced();
    assert_eq!(plain, run_traced(&Recorder::off()));
    let rec = Recorder::new();
    assert_eq!(plain, run_traced(&rec));
    assert_eq!(rec.take().unclosed_spans(), 0);
}

#[test]
fn traced_faulty_selection_twin_matches_untraced() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let truth = dfs.subdataset_distribution(hot);
    let faults = || {
        FaultConfig::new(
            FaultPlan::none(NODES as usize)
                .crash(1, SimTime::from_micros(5_000))
                .slow(
                    2,
                    SimTime::from_micros(0),
                    SimTime::from_micros(50_000),
                    3.0,
                ),
        )
    };
    let run_untraced = || {
        let mut sched = LocalityScheduler::new(&dfs);
        run_selection_faulty(
            &dfs,
            &truth,
            &mut sched,
            &SelectionConfig::default(),
            &faults(),
        )
    };
    let run_traced = |rec: &Recorder| {
        let mut sched = LocalityScheduler::new(&dfs);
        run_selection_faulty_traced(
            &dfs,
            &truth,
            &mut sched,
            &SelectionConfig::default(),
            &faults(),
            rec,
        )
    };
    let plain = run_untraced();
    assert_eq!(
        plain.faults.crashed_nodes,
        vec![1],
        "the scripted crash must actually fire"
    );
    assert_eq!(plain, run_traced(&Recorder::off()));
    let rec = Recorder::new();
    assert_eq!(plain, run_traced(&rec));
    assert_eq!(rec.take().unclosed_spans(), 0);
}

#[test]
fn traced_faulty_pipeline_twin_matches_untraced() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let faults =
        || FaultConfig::new(FaultPlan::none(NODES as usize).crash(2, SimTime::from_micros(8_000)));
    let run_untraced = || {
        let mut sched = LocalityScheduler::new(&dfs);
        run_pipeline_faulty(
            &dfs,
            hot,
            &mut sched,
            &word_count_profile(),
            &SelectionConfig::default(),
            &AnalysisConfig::default(),
            &faults(),
        )
    };
    let run_traced = |rec: &Recorder| {
        let mut sched = LocalityScheduler::new(&dfs);
        run_pipeline_faulty_traced(
            &dfs,
            hot,
            &mut sched,
            &word_count_profile(),
            &SelectionConfig::default(),
            &AnalysisConfig::default(),
            &faults(),
            rec,
        )
    };
    let plain = run_untraced();
    assert_eq!(plain, run_traced(&Recorder::off()));
    let rec = Recorder::new();
    assert_eq!(plain, run_traced(&rec));
    assert_eq!(rec.take().unclosed_spans(), 0);
}

#[test]
fn traced_resilient_selection_twin_matches_untraced() {
    let (dfs, catalog) = movie_dataset(NODES);
    let hot = catalog.most_reviewed();
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let base = std::env::temp_dir().join(format!("datanet-det-twin-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs = [base.join("a"), base.join("b")];
    let refs: Vec<&std::path::Path> = dirs.iter().map(|d| d.as_path()).collect();
    MetaStore::save_replicated(&arr, &refs, 8).expect("save");
    // Each run opens its own store: reads populate the shard cache, so a
    // shared handle would not be a fair twin comparison.
    let open = || MetaStore::open_replicated(&refs, 2).expect("open");
    let plain = {
        let mut store = open();
        run_selection_resilient(&dfs, hot, &mut store, &SelectionConfig::default(), None)
    };
    let run_traced = |rec: &Recorder| {
        let mut store = open();
        run_selection_resilient_traced(
            &dfs,
            hot,
            &mut store,
            &SelectionConfig::default(),
            None,
            rec,
        )
    };
    assert_eq!(plain, run_traced(&Recorder::off()));
    let rec = Recorder::new();
    assert_eq!(plain, run_traced(&rec));
    assert_eq!(rec.take().unclosed_spans(), 0);
    std::fs::remove_dir_all(&base).expect("cleanup");
}

#[test]
fn github_dataset_is_reproducible() {
    let a = github_dataset(NODES);
    let b = github_dataset(NODES);
    assert_eq!(a.namenode(), b.namenode());
    assert_eq!(a.total_bytes(), b.total_bytes());
    for (ba, bb) in a.blocks().iter().zip(b.blocks()) {
        assert_eq!(ba, bb);
    }
}
