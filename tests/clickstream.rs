//! End-to-end sessionization over a click-stream — the paper's first
//! motivating application, run through the full DataNet pipeline.

use datanet::Algorithm1;
use datanet::{ElasticMapArray, Separation};
use datanet_analytics::jobs::MovingAverage;
use datanet_analytics::session::session_stats;
use datanet_analytics::{partitions_from_assignment, LocalExecutor};
use datanet_dfs::{Dfs, DfsConfig, Record, SubDatasetId, Topology};
use datanet_workloads::ClickstreamConfig;

fn clickstream_dfs() -> Dfs {
    let records = ClickstreamConfig {
        users: 1_000,
        sessions: 12_000,
        ..Default::default()
    }
    .generate();
    Dfs::write_random(
        DfsConfig {
            block_size: 64 * 1024,
            replication: 3,
            topology: Topology::single_rack(8),
            seed: 0xC11C,
        },
        records,
    )
}

/// Most active user.
fn hot_user(dfs: &Dfs) -> SubDatasetId {
    let mut totals = std::collections::HashMap::new();
    for b in dfs.blocks() {
        for (s, bytes) in b.subdataset_sizes() {
            *totals.entry(s).or_insert(0u64) += bytes;
        }
    }
    totals
        .into_iter()
        .max_by_key(|&(s, b)| (b, std::cmp::Reverse(s)))
        .map(|(s, _)| s)
        .expect("non-empty")
}

#[test]
fn sessionize_the_hot_user_through_the_pipeline() {
    let dfs = clickstream_dfs();
    let user = hot_user(&dfs);

    // DataNet view → balanced partitions → collect the user's records.
    let view = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3)).view(user);
    assert!(!view.is_empty(), "hot user invisible to the meta-data");
    let plan = Algorithm1::new(&dfs, &view).plan_balanced();
    let parts = partitions_from_assignment(&dfs, user, &plan);
    let mut clicks: Vec<Record> = parts.into_iter().flatten().collect();
    clicks.sort_by_key(|r| r.timestamp);
    assert_eq!(
        clicks.iter().map(|r| r.size as u64).sum::<u64>(),
        dfs.subdataset_total(user),
        "partitions must cover the user exactly"
    );

    // Sessionize with a 30-minute timeout: bursts must be detected.
    let stats = session_stats(&clicks, 1800);
    assert!(
        stats.count > 3,
        "expected multiple sessions, got {}",
        stats.count
    );
    assert!(
        stats.mean_events >= 1.0 && stats.mean_events < 50.0,
        "implausible session size {}",
        stats.mean_events
    );
}

#[test]
fn clickstream_supports_the_analysis_jobs_too() {
    // The generic MapReduce path works over the click-stream as well.
    let dfs = clickstream_dfs();
    let user = hot_user(&dfs);
    let view = ElasticMapArray::build(&dfs, &Separation::All).view(user);
    let plan = Algorithm1::new(&dfs, &view).plan_balanced();
    let parts = partitions_from_assignment(&dfs, user, &plan);
    let run = LocalExecutor.execute(
        &MovingAverage {
            window_secs: 86_400,
        },
        &parts,
    );
    assert!(!run.reduced.is_empty());
    for &mean in run.reduced.values() {
        assert!((0.0..10.0).contains(&mean));
    }
}

#[test]
fn user_data_spreads_across_many_blocks() {
    // The click-stream geometry: bursty in time, but a heavy user's
    // sessions land all over the horizon, so the sub-dataset touches many
    // blocks (thin-wide rather than thick-narrow).
    let dfs = clickstream_dfs();
    let user = hot_user(&dfs);
    let dist = dfs.subdataset_distribution(user);
    let nonzero = dist.iter().filter(|&&b| b > 0).count();
    assert!(
        nonzero as f64 > 0.5 * dist.len() as f64,
        "hot user in only {nonzero}/{} blocks",
        dist.len()
    );
}
