//! Integration tests for the meta-data quality claims: Table II (memory vs
//! accuracy), Figure 9 (per-size accuracy) and the Equation 5 model.

use datanet::{ElasticMapArray, MemoryModel, Separation};
use datanet_bench::{movie_dataset, NODES};

#[test]
fn table2_accuracy_falls_as_alpha_drops() {
    let (dfs, _) = movie_dataset(NODES);
    let alphas = [0.51, 0.40, 0.31, 0.25, 0.21];
    let accs: Vec<f64> = alphas
        .iter()
        .map(|&a| ElasticMapArray::build(&dfs, &Separation::Alpha(a)).accuracy(&dfs))
        .collect();
    for w in accs.windows(2) {
        assert!(
            w[0] >= w[1] - 0.01,
            "accuracy should not rise as alpha drops: {accs:?}"
        );
    }
    // Paper's range at the endpoints: 97% at α=51%, 80% at α=21% — ours
    // must at least stay in a credible band.
    assert!(accs[0] > 0.90, "alpha=0.51 accuracy {}", accs[0]);
    assert!(accs[4] > 0.60, "alpha=0.21 accuracy {}", accs[4]);
    assert!(accs[4] <= 1.0 + 1e-9);
}

#[test]
fn table2_representation_ratio_rises_as_alpha_drops() {
    let (dfs, _) = movie_dataset(NODES);
    let alphas = [0.51, 0.40, 0.31, 0.25, 0.21];
    let ratios: Vec<f64> = alphas
        .iter()
        .map(|&a| ElasticMapArray::build(&dfs, &Separation::Alpha(a)).representation_ratio(&dfs))
        .collect();
    for w in ratios.windows(2) {
        assert!(
            w[1] >= w[0] * 0.99,
            "ratio should not fall as alpha drops: {ratios:?}"
        );
    }
    assert!(ratios[0] > 50.0, "meta-data should be compact: {ratios:?}");
}

#[test]
fn figure9_large_subdatasets_estimate_better() {
    let (dfs, catalog) = movie_dataset(NODES);
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let ranked = catalog.by_size_desc();
    let acc_of = |idx: usize| {
        let (movie, _) = ranked[idx];
        arr.view(movie).accuracy(&dfs)
    };
    // Mean accuracy of the 20 largest vs 20 movies deep in the tail.
    let large: f64 = (0..20).filter_map(acc_of).sum::<f64>() / 20.0;
    let tail_start = ranked.len() - 400;
    let small: f64 = (tail_start..tail_start + 20)
        .filter_map(acc_of)
        .sum::<f64>()
        / 20.0;
    assert!(
        large > small,
        "large movies should estimate better: large {large} vs small {small}"
    );
    assert!(large > 0.9, "top movies should be near-exact, got {large}");
}

#[test]
fn equation5_model_brackets_measured_memory() {
    // The Eq. 5 model with our actual record width should land within a
    // small factor of the measured ElasticMap footprint.
    let (dfs, _) = movie_dataset(NODES);
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    // Our hash-map entries serialise at 12 B = 96 bits, ε = 1%.
    let model = MemoryModel::new(0.01, 96.0, 1.0);
    let modeled: f64 = arr
        .maps()
        .iter()
        .map(|m| model.cost_bytes(m.distinct(), m.achieved_alpha()))
        .sum();
    let measured = arr.memory_bytes() as f64;
    let ratio = measured / modeled;
    assert!(
        (0.5..2.0).contains(&ratio),
        "measured {measured} vs modeled {modeled} (ratio {ratio})"
    );
}

#[test]
fn elasticmap_never_loses_a_present_subdataset() {
    // No false negatives end-to-end: every movie with data must be visible
    // in its view.
    let (dfs, catalog) = movie_dataset(NODES);
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.2));
    for (movie, bytes) in catalog.by_size_desc() {
        if bytes == 0 {
            continue;
        }
        assert!(
            !arr.view(movie).is_empty(),
            "movie {movie} with {bytes} bytes invisible to the meta-data"
        );
    }
}

#[test]
fn estimate_upper_bounded_by_exact_plus_bloom_term() {
    // Equation 6 structure: estimate = Σ exact + δ·|τ2| exactly.
    let (dfs, catalog) = movie_dataset(NODES);
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let hot = catalog.most_reviewed();
    let v = arr.view(hot);
    let exact_sum: u64 = v.exact().iter().map(|&(_, s)| s).sum();
    assert_eq!(
        v.estimated_total(),
        exact_sum + v.delta() * v.bloom().len() as u64
    );
    assert!(v.estimated_total() >= exact_sum);
}
