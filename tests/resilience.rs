//! Metadata-plane resilience acceptance tests (ISSUE: checksummed /
//! replicated ElasticMap shards, failure detection, degradation ladder).
//!
//! The two headline scenarios:
//! 1. 20% of shards corrupted with one replica intact → `scrub()` repairs
//!    everything and a subsequent selection reports zero rung-2/rung-3
//!    blocks.
//! 2. Every replica of one shard lost (full copy *and* summary) → the run
//!    still completes, the affected blocks are scheduled on rung 3, and
//!    `MetaHealth` accounts for every quarantined shard.

use std::fs;
use std::path::PathBuf;

use datanet::store::MetaStore;
use datanet::{ElasticMapArray, Separation};
use datanet_bench::movie_dataset;
use datanet_cluster::{DetectorConfig, FaultPlan, SimTime};
use datanet_dfs::SubDatasetId;
use datanet_mapreduce::{run_selection_resilient, FaultConfig, SelectionConfig};

const NODES: u32 = 8;
const SHARD_BLOCKS: usize = 4;

fn scenario() -> (datanet_dfs::Dfs, SubDatasetId) {
    let (dfs, catalog) = movie_dataset(NODES);
    (dfs, catalog.most_reviewed())
}

/// Fresh replica directories under the system temp dir.
fn replica_dirs(tag: &str, k: usize) -> Vec<PathBuf> {
    (0..k)
        .map(|i| {
            let dir = std::env::temp_dir().join(format!(
                "datanet-resilience-{tag}-{}-r{i}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            dir
        })
        .collect()
}

fn shard_file(i: usize) -> String {
    format!("shard-{i:04}.json")
}

fn summary_file(i: usize) -> String {
    format!("summary-{i:04}.json")
}

#[test]
fn scrub_heals_twenty_percent_corruption_back_to_rung_one() {
    let (dfs, hot) = scenario();
    let array = ElasticMapArray::build(&dfs, &Separation::All);
    let dirs = replica_dirs("heal", 2);
    MetaStore::save_replicated(&array, &[&dirs[0], &dirs[1]], SHARD_BLOCKS).unwrap();

    let mut store = MetaStore::open_replicated(&[&dirs[0], &dirs[1]], 4).unwrap();
    let shards = store.manifest().shard_count();
    assert!(shards >= 5, "need enough shards for a 20% corruption rate");

    // Corrupt every 5th shard in the primary replica only.
    let corrupted: Vec<usize> = (0..shards).step_by(5).collect();
    for &i in &corrupted {
        fs::write(dirs[0].join(shard_file(i)), b"not json at all").unwrap();
    }

    let report = store.scrub();
    assert_eq!(report.scrubbed, shards);
    assert_eq!(
        report.repaired,
        corrupted.len(),
        "every corrupted primary copy is rewritten from the healthy replica"
    );
    assert!(report.quarantined.is_empty());
    assert!(report.summaries_lost.is_empty());

    // Repaired bytes must verify: re-open the primary *alone* and select.
    let mut primary = MetaStore::open(&dirs[0], 4).unwrap();
    let out = run_selection_resilient(&dfs, hot, &mut primary, &SelectionConfig::default(), None);
    assert_eq!(out.meta.rungs.bloom, 0, "no rung-2 blocks after repair");
    assert_eq!(out.meta.rungs.fallback, 0, "no rung-3 blocks after repair");
    assert!(out.meta.rungs.exact > 0);
    assert_eq!(out.meta.est_error, 0.0, "Separation::All is exact");
    assert_eq!(
        out.per_node_bytes.iter().sum::<u64>(),
        dfs.subdataset_total(hot),
        "every sub-dataset byte credited exactly once"
    );
    for dir in &dirs {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn losing_every_replica_of_a_shard_degrades_to_rung_three() {
    let (dfs, hot) = scenario();
    let array = ElasticMapArray::build(&dfs, &Separation::All);
    let dirs = replica_dirs("lost", 2);
    MetaStore::save_replicated(&array, &[&dirs[0], &dirs[1]], SHARD_BLOCKS).unwrap();

    let mut store = MetaStore::open_replicated(&[&dirs[0], &dirs[1]], 4).unwrap();
    let shards = store.manifest().shard_count();
    let doomed = 1;
    assert!(doomed < shards.saturating_sub(1), "pick a full-width shard");

    // Destroy shard `doomed` everywhere: full copies and summaries alike.
    for dir in &dirs {
        fs::remove_file(dir.join(shard_file(doomed))).unwrap();
        fs::remove_file(dir.join(summary_file(doomed))).unwrap();
    }

    let out = run_selection_resilient(&dfs, hot, &mut store, &SelectionConfig::default(), None);
    assert_eq!(
        out.meta.rungs.fallback, SHARD_BLOCKS,
        "the lost shard's whole block span runs on rung 3"
    );
    assert_eq!(
        out.meta.rungs.bloom, 0,
        "no summary survived to offer rung 2"
    );
    assert_eq!(out.meta.shards_quarantined, 1);
    assert_eq!(store.quarantined_shards(), vec![doomed]);
    assert_eq!(
        out.per_node_bytes.iter().sum::<u64>(),
        dfs.subdataset_total(hot),
        "rung-3 scanning still credits every byte"
    );

    // A scrub confirms the shard is irreparable and accounts for it.
    let report = store.scrub();
    assert_eq!(report.quarantined, vec![doomed]);
    assert_eq!(report.summaries_lost, vec![doomed]);
    for dir in &dirs {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn summary_survival_offers_rung_two_instead() {
    let (dfs, hot) = scenario();
    // A bloom tail exists under Alpha, so summaries carry real information.
    let array = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
    let dirs = replica_dirs("rung2", 2);
    MetaStore::save_replicated(&array, &[&dirs[0], &dirs[1]], SHARD_BLOCKS).unwrap();

    let mut store = MetaStore::open_replicated(&[&dirs[0], &dirs[1]], 4).unwrap();
    let doomed = 0;
    // Full copies gone everywhere; summaries left intact.
    for dir in &dirs {
        fs::remove_file(dir.join(shard_file(doomed))).unwrap();
    }

    let out = run_selection_resilient(&dfs, hot, &mut store, &SelectionConfig::default(), None);
    assert_eq!(out.meta.rungs.fallback, 0, "summaries keep us off rung 3");
    assert!(
        out.meta.rungs.bloom > 0,
        "the doomed shard's blocks answer from the bloom sidecar"
    );
    assert_eq!(out.meta.shards_quarantined, 1);
    assert_eq!(
        out.per_node_bytes.iter().sum::<u64>(),
        dfs.subdataset_total(hot)
    );
    for dir in &dirs {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn degraded_metadata_and_node_crash_compose() {
    let (dfs, hot) = scenario();
    let array = ElasticMapArray::build(&dfs, &Separation::All);
    let dirs = replica_dirs("compose", 2);
    MetaStore::save_replicated(&array, &[&dirs[0], &dirs[1]], SHARD_BLOCKS).unwrap();

    let mut store = MetaStore::open_replicated(&[&dirs[0], &dirs[1]], 4).unwrap();
    for dir in &dirs {
        fs::remove_file(dir.join(shard_file(1))).unwrap();
        fs::remove_file(dir.join(summary_file(1))).unwrap();
    }

    // Healthy-engine probe to place the crash mid-phase.
    let probe = run_selection_resilient(&dfs, hot, &mut store, &SelectionConfig::default(), None);
    let crash_at = SimTime::from_micros(probe.end.as_micros() / 2);
    assert!(crash_at > SimTime::ZERO);

    let plan = FaultPlan::none(NODES as usize).crash(3, crash_at);
    let faults = FaultConfig::with_detection(plan, DetectorConfig::default());
    let out = run_selection_resilient(
        &dfs,
        hot,
        &mut store,
        &SelectionConfig::default(),
        Some(&faults),
    );
    assert_eq!(out.faults.crashed_nodes, vec![3]);
    assert_eq!(out.per_node_bytes[3], 0, "dead node keeps nothing");
    assert_eq!(
        out.faults.detection_latency_secs.len(),
        1,
        "the detector, not an oracle, reported the crash"
    );
    assert!(out.faults.detection_latency_secs[0] > 0.0);
    assert_eq!(out.meta.rungs.fallback, SHARD_BLOCKS);
    assert_eq!(
        out.per_node_bytes.iter().sum::<u64>(),
        dfs.subdataset_total(hot),
        "metadata loss plus a node crash still loses no data"
    );
    for dir in &dirs {
        let _ = fs::remove_dir_all(dir);
    }
}
