//! Distribution-aware shuffle integration: the reduce-side partitioner
//! may change *where* bytes go, never *what* the job answers.
//!
//! Two property tests pin the tentpole down:
//!
//! * **Partitioner ≡ hash partitioning** — over the sim-check corpus
//!   seeds, a pipeline run with aware shuffle routing, one with hash
//!   routing, and one with routing off all produce byte-identical
//!   `data_fingerprint`s; only placement and network bytes may differ.
//! * **Split + merge is order-insensitive** — heavy-key fragments merge
//!   to identical reducer output under shuffled arrival permutations
//!   (the `tests/ingest.rs` arrival-permutation pattern), across ≥ 20
//!   seeds and all four aggregate jobs.

use datanet::{ElasticMapArray, Separation};
use datanet_analytics::{AggJob, Pipeline, PipelineEnv, ShuffleParams};
use datanet_check::Scenario;
use datanet_dfs::{NodeId, Record};
use datanet_integration::testkit::ReplicaDirs;
use datanet_mapreduce::{range_matrix_estimate, range_matrix_truth, ShufflePlan, ShufflePlanner};
use datanet_obs::Recorder;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Parse `tests/corpus/seeds.txt` (same grammar as `simcheck.rs`).
fn corpus_seeds() -> Vec<u64> {
    include_str!("corpus/seeds.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().expect("corpus lines are u64 seeds"))
        .collect()
}

/// The target sub-dataset's records, in block order — the working set an
/// aggregate stage would see after the leading filter.
fn target_records(sc: &Scenario, dfs: &datanet_dfs::Dfs) -> Vec<Record> {
    dfs.blocks()
        .iter()
        .flat_map(|b| b.filter(sc.target_id()).cloned().collect::<Vec<_>>())
        .collect()
}

/// Satellite 1: aware routing, hash routing and no routing agree on the
/// data product for every corpus seed — same reduced results, bit for
/// bit, proven through the pipeline's own `data_fingerprint`.
#[test]
fn partitioner_matches_hash_partitioning_on_the_corpus() {
    let seeds = corpus_seeds();
    let mut aggregated_seeds = 0usize;
    for &seed in &seeds {
        let sc = Scenario::from_seed(seed);
        let dfs = sc.build_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(sc.alpha));
        let pipe = Pipeline::new(sc.pipeline_spec());
        if pipe
            .spec()
            .seq
            .iter()
            .any(|op| matches!(op, datanet_analytics::StageOp::Aggregate(_)))
        {
            aggregated_seeds += 1;
        }
        let run = |shuffle: Option<ShuffleParams>| {
            let mut env = PipelineEnv::new(&dfs, &arr);
            env.faults = sc.has_faults().then(|| sc.fault_config());
            env.shuffle = shuffle;
            let dirs = ReplicaDirs::new("shuffle-corpus", 2);
            pipe.run(&mut env, &dirs.paths(), &Recorder::off())
                .expect("pipeline run")
                .data_fingerprint()
        };
        let params = |aware: bool| ShuffleParams {
            key_ranges: sc.shuffle.key_ranges,
            split_factor: sc.shuffle.split_factor,
            aware,
        };
        let plain = run(None);
        assert_eq!(
            run(Some(params(true))),
            plain,
            "seed {seed}: aware shuffle routing changed the data product"
        );
        assert_eq!(
            run(Some(params(false))),
            plain,
            "seed {seed}: hash shuffle routing changed the data product"
        );
    }
    assert!(
        aggregated_seeds >= 20,
        "only {aggregated_seeds} corpus seeds exercise an aggregate stage"
    );
}

/// Satellite 2: heavy-key split + merge is arrival-order-insensitive.
/// For ≥ 20 seeds, partition each aggregate job's map output under both
/// the aware plan (heavy ranges split across reducers) and the hash
/// plan, shuffle the fragment arrival order several times, and require
/// the merge to reproduce the unrouted job's output exactly.
#[test]
fn split_merge_is_arrival_order_insensitive() {
    let mut checked = 0usize;
    let mut spread_seeds = 0usize;
    for seed in 0..24u64 {
        let sc = Scenario::from_seed(seed);
        let dfs = sc.build_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(sc.alpha));
        let view = arr.view(sc.target_id());
        let ranges = sc.shuffle.key_ranges;
        let est = range_matrix_estimate(&dfs, &view, ranges);
        let truth = range_matrix_truth(&dfs, sc.target_id(), ranges);
        let m = truth.len();
        let aware = ShufflePlanner::new(sc.shuffle.split_factor).plan(&est);
        let hash = ShufflePlan::hash(ranges, (0..m as u32).map(NodeId).collect());

        // The scenario worlds spread keys too evenly to force a split
        // (every range sits under the fair share), so a third plan prices
        // a deliberately skewed matrix: this seed's per-node bytes all
        // concentrated in range 0 of a coarse 3-range key space. The
        // planner MUST split that range across reducers, making the
        // heavy-key fragment path load-bearing in every iteration.
        let skewed: Vec<Vec<u64>> = truth
            .iter()
            .map(|row| vec![row.iter().sum(), 0, 0])
            .collect();
        let split = ShufflePlanner::new(sc.shuffle.split_factor).plan(&skewed);
        assert!(
            split.assignments[0].len() > 1,
            "seed {seed}: a range holding every byte must be split across \
             the {m} reducers"
        );

        let records = target_records(&sc, &dfs);
        assert!(!records.is_empty(), "seed {seed}: target view is empty");
        let mut seed_spread = false;
        let mut rng = StdRng::seed_from_u64(sc.shuffle.permutation_seed);
        for agg in [
            AggJob::WordCount,
            AggJob::MovingAverage(86_400),
            AggJob::Histogram,
            AggJob::TopK,
        ] {
            let baseline = agg.run(&records);
            for (name, plan) in [("aware", &aware), ("hash", &hash), ("split", &split)] {
                let frags = agg.map_fragments(&records, plan);
                // A job with many distinct keys (word count, histogram)
                // lands traffic in the heavy range and spreads it across
                // the split fragments; single-key jobs may miss it, so
                // spread is asserted per seed, not per job.
                if name == "split" && frags.iter().filter(|f| !f.entries.is_empty()).count() > 1 {
                    seed_spread = true;
                }
                for trial in 0..3 {
                    let mut arrived = frags.clone();
                    arrived.shuffle(&mut rng);
                    assert_eq!(
                        agg.merge_fragments(&arrived),
                        baseline,
                        "seed {seed} {} via {name} plan, arrival permutation {trial}: \
                         merge diverged from the unrouted job",
                        agg.label()
                    );
                    checked += 1;
                }
            }
        }
        if seed_spread {
            spread_seeds += 1;
        }
    }
    assert!(checked >= 20 * 4 * 3 * 3, "sweep shrank: {checked} checks");
    assert!(
        spread_seeds >= 20,
        "split-range traffic spread across reducers on only {spread_seeds} seeds"
    );
}

/// The aware planner actually moves bytes off the network relative to
/// hash partitioning on a clustered world — the paper's Section V claim
/// at integration scope (the bench gates the exact ratio).
#[test]
fn aware_plan_cuts_network_bytes_on_clustered_data() {
    use datanet_analytics::word_count_profile;
    use datanet_mapreduce::{run_analysis_shuffled, AnalysisConfig};
    let mut wins = 0usize;
    let mut eligible = 0usize;
    for seed in 0..12u64 {
        let sc = Scenario::from_seed(seed);
        let dfs = sc.build_dfs();
        let ranges = sc.shuffle.key_ranges;
        let truth = range_matrix_truth(&dfs, sc.target_id(), ranges);
        let m = truth.len();
        let total: u64 = truth.iter().flatten().sum();
        if total == 0 || m < 3 {
            continue;
        }
        eligible += 1;
        let aware = ShufflePlanner::new(sc.shuffle.split_factor).plan(&truth);
        let hash = ShufflePlan::hash(ranges, (0..m as u32).map(NodeId).collect());
        let job = word_count_profile();
        let cfg = AnalysisConfig::default();
        let a = run_analysis_shuffled(&truth, &job, &cfg, &aware);
        let h = run_analysis_shuffled(&truth, &job, &cfg, &hash);
        if a.network_bytes <= h.network_bytes {
            wins += 1;
        }
    }
    assert!(eligible >= 6, "not enough eligible worlds: {eligible}");
    assert!(
        wins * 4 >= eligible * 3,
        "aware plan beat hash on network bytes in only {wins}/{eligible} worlds"
    );
}
