//! Offline, vendored stand-in for `rayon`.
//!
//! `par_iter()` / `into_par_iter()` return ordinary sequential iterators, so
//! every downstream adapter (`map`, `filter`, `sum`, `collect`, ...) works
//! unchanged. Parallel speedup is traded away for building without a network;
//! results are bit-identical to the parallel version for the pure functions
//! this workspace maps over.

pub mod prelude {
    /// `&collection` -> sequential iterator (stands in for `ParallelIterator`).
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator<Item = &'data T>,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `&mut collection` -> sequential iterator of mutable references.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator<Item = &'data mut T>,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Owning variant: `collection.into_par_iter()`.
    pub trait IntoParallelIterator {
        type Iter: Iterator;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<C: IntoIterator> IntoParallelIterator for C {
        type Iter = C::IntoIter;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Run two closures "in parallel" (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u64 = v.clone().into_par_iter().sum();
        assert_eq!(sum, 10);
        let mut w = v;
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![2, 3, 4, 5]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
