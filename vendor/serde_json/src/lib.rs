//! Offline, vendored stand-in for `serde_json`: a strict JSON printer and
//! parser over the in-repo `serde` reflection model.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

// --- printing -----------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                // Upstream rejects non-finite floats; emitting null matches
                // its lossy `to_value` pathway and keeps saving infallible.
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

// --- parsing ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected {lit})")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(&format!("invalid number \"{text}\"")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a value tree from JSON text.
pub fn parse_value(bytes: &[u8]) -> Result<Value> {
    let mut p = Parser::new(bytes);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: DeserializeExt>(bytes: &[u8]) -> Result<T> {
    let v = parse_value(bytes)?;
    T::from_value(&v).map_err(Error::from)
}

/// Deserialize from a JSON string.
pub fn from_str<T: DeserializeExt>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

/// Local alias so the public functions read like upstream's bounds.
pub trait DeserializeExt: Deserialize {}
impl<T: Deserialize> DeserializeExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
        assert_eq!(from_str::<f64>("1.25").unwrap(), 1.25);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);

        let mut m = HashMap::new();
        m.insert(5u64, vec![1.5f64, 2.5]);
        let json = to_string(&m).unwrap();
        let back: HashMap<u64, Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Array(vec![Value::U64(1)])),
            ("b".to_string(), Value::Null),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value(pretty.as_bytes()).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 trailing").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
        assert!(parse_value(b"{\"a\":}").is_err());
    }

    #[test]
    fn float_shortest_roundtrip() {
        for &f in &[0.1, 1e-9, 123456.789, 1.0] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
    }
}
