//! Offline, vendored stand-in for `criterion`.
//!
//! Provides the same authoring surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `black_box`) with a minimal wall-clock harness: each
//! benchmark is warmed up briefly, then timed for a fixed number of batches
//! and reported as a median per-iteration time on stdout. No statistics,
//! plotting, or report files.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing helper handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes ~1ms, so very fast
        // routines are not dominated by clock resolution.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_per_iter(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2] / (self.iters_per_sample as u32).max(1)
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    let mut out = String::new();
    if nanos < 1_000 {
        let _ = write!(out, "{nanos} ns");
    } else if nanos < 1_000_000 {
        let _ = write!(out, "{:.2} µs", nanos as f64 / 1_000.0);
    } else if nanos < 1_000_000_000 {
        let _ = write!(out, "{:.2} ms", nanos as f64 / 1_000_000.0);
    } else {
        let _ = write!(out, "{:.2} s", nanos as f64 / 1_000_000_000.0);
    }
    out
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_count: usize, mut f: F) {
    let mut b = Bencher::new(sample_count);
    f(&mut b);
    println!(
        "{:<40} time: [{}]",
        id,
        format_duration(b.median_per_iter())
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_parameterized() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut count = 0;
        for n in [1u64, 2] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(n * 2));
                count += 1;
            });
        }
        g.finish();
        assert_eq!(count, 2);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
