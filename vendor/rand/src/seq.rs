//! Sequence helpers (`SliceRandom` subset).

use crate::{uniform_below, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// One uniformly chosen element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in random order (fewer if the slice is
    /// short). Returns an iterator to mirror the upstream API shape.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let take = amount.min(self.len());
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..take {
            let j = i + uniform_below(rng, (idx.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx[..take]
            .iter()
            .map(|&i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(6);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 8);
        // Oversized request clamps.
        assert_eq!(v.choose_multiple(&mut rng, 99).count(), 20);
        // Empty slice.
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
