//! Offline, vendored stand-in for the `rand` crate.
//!
//! Implements exactly the API subset this workspace uses — `Rng`,
//! `SeedableRng`, `rngs::StdRng` and `seq::SliceRandom` — with a
//! deterministic xoshiro256** generator. Streams differ from upstream
//! `rand`, but every consumer in this repository only relies on
//! *self-consistent* determinism (same seed ⇒ same stream), never on the
//! upstream bit pattern.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator ("standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` without modulo bias worth caring about
/// here: widening multiply keeps the draw deterministic and fast.
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Element types `gen_range` can produce. The single blanket `SampleRange`
/// impl below (rather than one impl per concrete range type) is what lets
/// integer-literal ranges infer their type from the surrounding expression,
/// matching upstream rand's inference behaviour.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (half-open).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]` (inclusive).
    fn sample_in_incl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_in_incl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_in_incl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
    fn sample_in_incl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in_incl(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of an inferable `Standard` type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.5..0.75f64);
            assert!((0.5..0.75).contains(&f));
            let i = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
