//! Offline, vendored stand-in for `serde`.
//!
//! Instead of upstream's visitor-based zero-copy architecture, this crate
//! uses a simple reflection model: [`Serialize`] lowers a value into the
//! [`Value`] tree and [`Deserialize`] rebuilds it from one. The only data
//! format in this workspace is JSON (the sibling `serde_json` stand-in),
//! whose documents map 1:1 onto [`Value`], so nothing is lost — and the
//! derive macro (`serde_derive`) stays small enough to live in-repo with
//! zero dependencies.
//!
//! Representation conventions match upstream `serde_json`: named structs
//! are objects, newtype structs are their inner value, tuples are arrays,
//! unit enum variants are strings, data-carrying variants are
//! single-entry objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// The self-describing data tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key-ordered mapping (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short type tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Convenience constructor.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower a value into the [`Value`] tree.
pub trait Serialize {
    /// The value as a data tree.
    fn to_value(&self) -> Value;
}

/// Rebuild a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from a data tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Upstream-compatible alias bound (everything here is owned already).
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// --- primitives ---------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::msg(format!("integer {n} out of i64 range")))?,
                    Value::I64(n) => n,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// --- containers ---------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                        if items.len() != LEN {
                            return Err(DeError::msg(format!(
                                "expected array of {LEN}, found {}", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// JSON object keys are strings; lower a key's [`Value`] into one.
fn key_to_string(v: Value) -> Result<String, DeError> {
    match v {
        Value::Str(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(DeError::msg(format!(
            "map key must serialize to a scalar, got {}",
            other.kind()
        ))),
    }
}

/// Rebuild a key: try the literal string first, then numeric readings
/// (upstream serde_json stringifies integer keys the same way).
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    Err(DeError::msg(format!("cannot rebuild map key from \"{s}\"")))
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(k.to_value()).expect("unsupported map key type");
                (key, v.to_value())
            })
            .collect();
        // Hash maps iterate in arbitrary order; sort for stable output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(k.to_value()).expect("unsupported map key type");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-42i64).to_value()).unwrap(), -42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u32, "x".to_string());
        assert_eq!(
            <(u32, String)>::from_value(&t.to_value()).unwrap(),
            (1, "x".to_string())
        );
    }

    #[test]
    fn maps_roundtrip_with_numeric_keys() {
        let mut m = HashMap::new();
        m.insert(7u64, "seven".to_string());
        m.insert(11, "eleven".to_string());
        let v = m.to_value();
        match &v {
            Value::Object(entries) => {
                assert!(entries.iter().any(|(k, _)| k == "7"));
            }
            _ => panic!("map must serialize to object"),
        }
        let back: HashMap<u64, String> = HashMap::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
