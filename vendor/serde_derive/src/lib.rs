//! Derive macros for the in-repo `serde` stand-in.
//!
//! Hand-rolled token parsing (no `syn`/`quote` — those cannot be fetched in
//! this offline build). Supports exactly the item shapes this workspace
//! serializes:
//!
//! * named-field structs (docs/attributes allowed anywhere),
//! * tuple structs (newtypes serialize as their inner value),
//! * unit structs,
//! * enums with unit, tuple and struct variants.
//!
//! Generic items are rejected with a clear compile error — none of the
//! workspace's serialized types are generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

/// Skip `#[...]` attribute pairs (including doc comments).
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => panic!("expected [...] after #"),
                }
            }
            _ => return,
        }
    }
}

/// Skip a visibility marker (`pub`, `pub(crate)`, …).
fn skip_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Count fields in a tuple-struct/tuple-variant parenthesis group: one more
/// than the number of commas at angle-bracket depth 0 (trailing comma
/// tolerated).
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    let mut last_was_comma = false;
    for t in group {
        saw_any = true;
        last_was_comma = false;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if !saw_any {
        0
    } else if last_was_comma {
        fields
    } else {
        fields + 1
    }
}

/// Extract field names from a named-field brace group.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        skip_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => panic!("expected field name, found {other}"),
            None => break,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected : after field {name}, found {other:?}"),
        }
        names.push(name);
        // Consume the type up to the next comma at angle depth 0.
        let mut depth = 0i32;
        for t in tokens.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => panic!("expected variant name, found {other}"),
            None => break,
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Consume up to the next comma (skips explicit discriminants).
        for t in tokens.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected struct/enum, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type {name}");
    }
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body for {name}, found {other:?}"),
        },
        other => panic!("cannot derive serde traits for a {other}"),
    }
}

fn field_get(field: &str) -> String {
    format!("v.get(\"{field}\").unwrap_or(&::serde::Value::Null)")
}

/// Derive the reflection-model `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::to_value(&self.0)\n}}\n}}"
        ),
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Array(vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("Self::{vname} => ::serde::Value::Str(\"{vname}\".to_string())")
                        }
                        VariantKind::Tuple(1) => format!(
                            "Self::{vname}(f0) => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "Self::{vname}({}) => ::serde::Value::Object(vec![(\
                                 \"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\
                                 \"{vname}\".to_string(), ::serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n}}\n}}",
                arms.join(",\n")
            )
        }
    };
    body.parse().expect("generated Serialize impl must parse")
}

/// Derive the reflection-model `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value({})?",
                        field_get(f)
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Object(_) => Ok(Self {{ {} }}),\n\
                 other => Err(::serde::DeError::expected(\"{name} object\", other)),\n\
                 }}\n}}\n}}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             Ok(Self(::serde::Deserialize::from_value(v)?))\n}}\n}}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Array(items) if items.len() == {arity} => Ok(Self({})),\n\
                 other => Err(::serde::DeError::expected(\"{name} array of {arity}\", other)),\n\
                 }}\n}}\n}}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             Ok(Self)\n}}\n}}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok(Self::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok(Self::{vname}(\
                             ::serde::Deserialize::from_value(inner)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} =>\
                                 Ok(Self::{vname}({})),\n\
                                 other => Err(::serde::DeError::expected(\
                                 \"{name}::{vname} array of {n}\", other)),\n}}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok(Self::{vname} {{ {} }})",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 other => Err(::serde::DeError::msg(format!(\
                 \"unknown {name} variant {{other}}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {data}\n\
                 other => Err(::serde::DeError::msg(format!(\
                 \"unknown {name} variant {{other}}\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::DeError::expected(\"{name} variant\", other)),\n\
                 }}\n}}\n}}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(",\n"))
                },
            )
        }
    };
    body.parse().expect("generated Deserialize impl must parse")
}
